//! Optimized product quantization (non-parametric OPQ, Ge et al., CVPR
//! 2013): learn an orthogonal rotation `R` jointly with the PQ codebooks so
//! subspaces decorrelate and quantization distortion drops.
//!
//! The alternation: (1) fix `R`, train/encode PQ on the rotated sample
//! `Y = R·X`; (2) fix the codes, solve the orthogonal Procrustes problem
//! `R ← argmin ‖R·X − Ŷ‖_F` where `Ŷ` is the PQ reconstruction of `Y` —
//! solved in closed form by the SVD in [`hd_core::linalg`].

use super::pq::{Pq, PqParams};
use hd_core::dataset::Dataset;
use hd_core::linalg::{procrustes, Matrix};
use hd_core::topk::Neighbor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use hd_core::api::{AnnIndex, IndexStats, SearchOutput, SearchRequest};

/// Parameters (paper §5: M = 8 subspaces).
#[derive(Debug, Clone, Copy)]
pub struct OpqParams {
    pub pq: PqParams,
    /// Alternating-optimization iterations.
    pub opt_iters: usize,
    /// Sample size for the rotation optimization (Procrustes is O(ν²·s)).
    pub opt_sample: usize,
}

impl Default for OpqParams {
    fn default() -> Self {
        Self {
            pq: PqParams::default(),
            opt_iters: 8,
            opt_sample: 2000,
        }
    }
}

/// A trained OPQ index: rotation + PQ over the rotated space.
pub struct Opq {
    rotation: Matrix,
    pq: Pq,
    dim: usize,
}

impl std::fmt::Debug for Opq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Opq").field("dim", &self.dim).finish()
    }
}

impl Opq {
    /// Trains the rotation and codebooks, then encodes the whole dataset.
    pub fn build(data: &Dataset, params: OpqParams) -> Self {
        assert!(!data.is_empty(), "cannot quantize an empty dataset");
        let dim = data.dim();

        // Optimization sample, as column matrix X (dim × s).
        let mut rng = rand::rngs::StdRng::seed_from_u64(params.pq.seed ^ 0x0b0b);
        let mut idx: Vec<usize> = (0..data.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(params.opt_sample.min(data.len()));
        let s = idx.len();
        let mut x = Matrix::zeros(dim, s);
        for (col, &i) in idx.iter().enumerate() {
            for (row, &v) in data.get(i).iter().enumerate() {
                x[(row, col)] = v as f64;
            }
        }

        let mut rotation = Matrix::identity(dim);
        let mut pq_params = params.pq;
        // Cheaper k-means inside the alternation; full training afterwards.
        pq_params.kmeans_iters = params.pq.kmeans_iters.min(6);

        for _ in 0..params.opt_iters {
            // (1) Rotate sample, train + encode PQ on it.
            let y = rotation.matmul(&x);
            let mut sample = Dataset::new(dim);
            let mut col_buf = vec![0.0f32; dim];
            for c in 0..s {
                for r in 0..dim {
                    col_buf[r] = y[(r, c)] as f32;
                }
                sample.push(&col_buf);
            }
            let mut pq = Pq::build(&sample, pq_params);
            pq.encode_all(&sample);
            // (2) Reconstruction Ŷ, then Procrustes: R ← argmin ‖R·X − Ŷ‖.
            let mut y_hat = Matrix::zeros(dim, s);
            for c in 0..s {
                for (r, &v) in pq.reconstruct(c).iter().enumerate() {
                    y_hat[(r, c)] = v as f64;
                }
            }
            rotation = procrustes(&x, &y_hat);
        }

        // Final: rotate the full dataset, train PQ properly, encode.
        let rotated = Self::rotate_dataset(&rotation, data);
        let pq = Pq::build(&rotated, params.pq);
        Self { rotation, pq, dim }
    }

    fn rotate_dataset(r: &Matrix, data: &Dataset) -> Dataset {
        let dim = data.dim();
        let mut out = Dataset::new(dim);
        out.reserve(data.len());
        let mut buf = vec![0.0f32; dim];
        for p in data.iter() {
            r.apply_f32(p, &mut buf);
            out.push(&buf);
        }
        out
    }

    /// kANN by ADC in the rotated space (rotations preserve L2, so the
    /// estimates target the original distances).
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim);
        let mut rq = vec![0.0f32; self.dim];
        self.rotation.apply_f32(query, &mut rq);
        self.pq.knn(&rq, k)
    }

    /// ADC shortlist + exact re-ranking against the original (unrotated)
    /// data — the paper's OPQ operating point (see [`Pq::knn_rerank`]).
    pub fn knn_rerank(&self, data: &Dataset, query: &[f32], k: usize, expand: usize) -> Vec<Neighbor> {
        self.knn_rerank_shortlist(data, query, k, k * expand.max(1))
    }

    /// [`Self::knn_rerank`] with the shortlist size given directly (the
    /// refinement budget of the unified trait API).
    pub fn knn_rerank_shortlist(
        &self,
        data: &Dataset,
        query: &[f32],
        k: usize,
        shortlist: usize,
    ) -> Vec<Neighbor> {
        use hd_core::distance::l2_sq;
        use hd_core::topk::TopK;
        let k = k.min(self.pq.len());
        if k == 0 {
            return Vec::new();
        }
        let shortlist = self.knn(query, shortlist.max(k).min(self.pq.len()));
        let mut tk = TopK::new(k);
        for c in shortlist {
            tk.push(Neighbor::new(c.id, l2_sq(query, data.get(c.id as usize))));
        }
        let mut out = tk.into_sorted();
        for nb in &mut out {
            nb.dist = nb.dist.sqrt();
        }
        out
    }

    /// Distortion over the (rotated) dataset — comparable with
    /// [`Pq::distortion`] because rotations are isometries.
    pub fn distortion(&self, data: &Dataset) -> f64 {
        let rotated = Self::rotate_dataset(&self.rotation, data);
        self.pq.distortion(&rotated)
    }

    pub fn rotation(&self) -> &Matrix {
        &self.rotation
    }

    pub fn memory_bytes(&self) -> usize {
        self.pq.memory_bytes() + self.rotation.data.capacity() * 8
    }

    pub fn len(&self) -> usize {
        self.pq.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pq.is_empty()
    }
}


/// An [`Opq`] bundled with the corpus it encodes — see
/// [`crate::quantization::PqRerank`] for the rationale.
pub struct OpqRerank<'a> {
    pub opq: Opq,
    pub data: &'a Dataset,
}

impl AnnIndex for OpqRerank<'_> {
    fn len(&self) -> u64 {
        self.opq.len() as u64
    }

    fn dim(&self) -> usize {
        self.opq.dim
    }

    /// `refine` overrides the exact-rerank shortlist size (default `20·k`);
    /// `candidates` does not apply.
    fn search_core(&self, query: &[f32], req: &SearchRequest) -> std::io::Result<SearchOutput> {
        let shortlist = req.refine.unwrap_or(req.k.saturating_mul(20));
        Ok(SearchOutput::from_neighbors(self.opq.knn_rerank_shortlist(
            self.data, query, req.k, shortlist,
        )))
    }

    fn stats(&self) -> IndexStats {
        IndexStats::in_memory(self.opq.memory_bytes() + self.data.memory_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_core::dataset::{generate, Dataset, DatasetProfile};
    use hd_core::ground_truth::ground_truth_knn;
    use hd_core::metrics::score_workload;
    use rand::{Rng, SeedableRng};

    fn tiny_params() -> OpqParams {
        OpqParams {
            pq: PqParams {
                m_subspaces: 4,
                k_sub: 16,
                train_size: 400,
                kmeans_iters: 6,
                seed: 2,
            },
            opt_iters: 4,
            opt_sample: 300,
        }
    }

    /// Data with strong cross-dimension correlation — the regime where OPQ's
    /// rotation visibly beats plain PQ.
    fn correlated_data(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        let mut p = vec![0.0f32; dim];
        for _ in 0..n {
            let base: f32 = rng.gen_range(-10.0..10.0);
            for (j, v) in p.iter_mut().enumerate() {
                // Every dim strongly follows `base` with small noise, putting
                // all the variance on one diagonal direction.
                *v = base * (1.0 + j as f32 * 0.01) + rng.gen_range(-0.5..0.5);
            }
            ds.push(&p);
        }
        ds
    }

    #[test]
    fn rotation_is_orthogonal() {
        let data = correlated_data(500, 16, 1);
        let opq = Opq::build(&data, tiny_params());
        assert!(
            opq.rotation().orthogonality_error() < 1e-6,
            "R must stay orthogonal: {}",
            opq.rotation().orthogonality_error()
        );
    }

    #[test]
    fn opq_distortion_not_worse_than_pq_on_correlated_data() {
        let data = correlated_data(800, 16, 3);
        let pq = Pq::build(&data, tiny_params().pq);
        let opq = Opq::build(&data, tiny_params());
        let (dp, do_) = (pq.distortion(&data), opq.distortion(&data));
        assert!(
            do_ <= dp * 1.05,
            "OPQ ({do_:.3}) should not lose to PQ ({dp:.3}) on correlated data"
        );
    }

    #[test]
    fn knn_quality_on_real_profile() {
        let (data, queries) = generate(&DatasetProfile::GLOVE, 2000, 10, 55);
        let opq = Opq::build(
            &data,
            OpqParams {
                pq: PqParams {
                    m_subspaces: 5,
                    k_sub: 32,
                    train_size: 1000,
                    kmeans_iters: 8,
                    seed: 7,
                },
                opt_iters: 3,
                opt_sample: 500,
            },
        );
        let truth = ground_truth_knn(&data, &queries, 10, 4);
        let approx: Vec<Vec<Neighbor>> =
            queries.iter().map(|q| opq.knn_rerank(&data, q, 10, 20)).collect();
        let s = score_workload(&truth, &approx);
        assert!(s.recall > 0.4, "OPQ (re-ranked) recall too low: {}", s.recall);
    }
}
