//! Vector-quantization baselines: product quantization (PQ, Jégou et al.,
//! PAMI 2011) and optimized product quantization (OPQ, Ge et al., CVPR 2013)
//! — the paper's in-memory quantization comparator (§2.2.5, OPQ in §5).

pub mod opq;
pub mod pq;

pub use opq::{Opq, OpqParams, OpqRerank};
pub use pq::{Pq, PqParams, PqRerank};
