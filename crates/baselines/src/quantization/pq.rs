//! Product quantization: split the space into M subspaces, vector-quantize
//! each independently (256 centroids ⇒ 1 byte per subspace), and answer
//! queries by asymmetric distance computation (ADC): a per-query lookup
//! table of query-to-centroid distances turns each distance estimate into M
//! table lookups. Entirely memory-resident — fast, approximate, RAM-hungry
//! relative to disk methods (the trade Fig. 8 illustrates).

use hd_core::dataset::Dataset;
use hd_core::distance::{l2_sq, l2_sq_bounded};
use hd_core::kmeans::kmeans;
use hd_core::topk::{Neighbor, TopK};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use hd_core::api::{AnnIndex, IndexStats, SearchOutput, SearchRequest};

/// Parameters (paper §5: M = 8 subspaces; 8 bits/subspace is the PQ
/// standard).
#[derive(Debug, Clone, Copy)]
pub struct PqParams {
    /// Number of subspaces M.
    pub m_subspaces: usize,
    /// Centroids per subspace (≤ 256 so codes stay 1 byte).
    pub k_sub: usize,
    /// Training-sample size.
    pub train_size: usize,
    pub kmeans_iters: usize,
    pub seed: u64,
}

impl Default for PqParams {
    fn default() -> Self {
        Self {
            m_subspaces: 8,
            k_sub: 256,
            train_size: 10_000,
            kmeans_iters: 15,
            seed: 11,
        }
    }
}

/// A trained product quantizer plus the encoded database.
pub struct Pq {
    dim: usize,
    msub: usize,
    ksub: usize,
    /// Subspace boundaries: `bounds[s]..bounds[s+1]` are subspace s's dims.
    bounds: Vec<usize>,
    /// `codebooks[s][c]` = centroid c of subspace s.
    codebooks: Vec<Vec<Vec<f32>>>,
    /// n × M codes.
    codes: Vec<u8>,
    n: usize,
}

impl std::fmt::Debug for Pq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pq")
            .field("n", &self.n)
            .field("M", &self.msub)
            .field("k*", &self.ksub)
            .finish()
    }
}

fn subspace_bounds(dim: usize, msub: usize) -> Vec<usize> {
    let base = dim / msub;
    let extra = dim % msub;
    let mut bounds = Vec::with_capacity(msub + 1);
    let mut acc = 0;
    bounds.push(0);
    for s in 0..msub {
        acc += base + usize::from(s < extra);
        bounds.push(acc);
    }
    bounds
}

impl Pq {
    /// Trains codebooks on a sample and encodes the whole dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty or `m_subspaces` exceeds the
    /// dimensionality.
    pub fn build(data: &Dataset, params: PqParams) -> Self {
        assert!(!data.is_empty(), "cannot quantize an empty dataset");
        let dim = data.dim();
        assert!(params.m_subspaces >= 1 && params.m_subspaces <= dim);
        assert!(params.k_sub >= 1 && params.k_sub <= 256);
        let bounds = subspace_bounds(dim, params.m_subspaces);

        // Training sample.
        let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
        let mut idx: Vec<usize> = (0..data.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(params.train_size.min(data.len()));

        // Per-subspace k-means.
        let mut codebooks = Vec::with_capacity(params.m_subspaces);
        for s in 0..params.m_subspaces {
            let (lo, hi) = (bounds[s], bounds[s + 1]);
            let mut sub = Dataset::new(hi - lo);
            for &i in &idx {
                sub.push(&data.get(i)[lo..hi]);
            }
            let km = kmeans(&sub, params.k_sub, params.kmeans_iters, params.seed ^ s as u64);
            codebooks.push(km.centroids);
        }

        let mut pq = Self {
            dim,
            msub: params.m_subspaces,
            ksub: params.k_sub,
            bounds,
            codebooks,
            codes: Vec::new(),
            n: 0,
        };
        pq.encode_all(data);
        pq
    }

    /// (Re-)encodes a dataset against the trained codebooks.
    pub fn encode_all(&mut self, data: &Dataset) {
        assert_eq!(data.dim(), self.dim);
        self.n = data.len();
        self.codes = vec![0u8; self.n * self.msub];
        for (i, p) in data.iter().enumerate() {
            for s in 0..self.msub {
                self.codes[i * self.msub + s] = self.encode_sub(p, s);
            }
        }
    }

    fn encode_sub(&self, p: &[f32], s: usize) -> u8 {
        let (lo, hi) = (self.bounds[s], self.bounds[s + 1]);
        let sub = &p[lo..hi];
        let mut best = 0u8;
        let mut best_d = f32::INFINITY;
        for (c, centroid) in self.codebooks[s].iter().enumerate() {
            let d = l2_sq(sub, centroid);
            if d < best_d {
                best_d = d;
                best = c as u8;
            }
        }
        best
    }

    /// Reconstructs (decodes) object `i` from its code.
    pub fn reconstruct(&self, i: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dim);
        for s in 0..self.msub {
            let c = self.codes[i * self.msub + s] as usize;
            out.extend_from_slice(&self.codebooks[s][c]);
        }
        out
    }

    /// The per-query ADC lookup table: `lut[s][c]` = squared distance from
    /// the query's subvector s to centroid c.
    pub fn build_lut(&self, query: &[f32]) -> Vec<Vec<f32>> {
        assert_eq!(query.len(), self.dim);
        (0..self.msub)
            .map(|s| {
                let (lo, hi) = (self.bounds[s], self.bounds[s + 1]);
                let sub = &query[lo..hi];
                self.codebooks[s].iter().map(|c| l2_sq(sub, c)).collect()
            })
            .collect()
    }

    /// ADC kNN scan over the encoded database. Distances are *estimates*
    /// (query-to-reconstruction), which is PQ's source of approximation.
    ///
    /// The lookup accumulation abandons early against the running k-th
    /// estimate: the per-subspace terms are non-negative, so a partial sum
    /// already beyond the bound can only grow, and the entry could not have
    /// entered the top-k anyway — same shortlist, fewer table lookups.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        let k = k.min(self.n);
        if k == 0 {
            return Vec::new();
        }
        let lut = self.build_lut(query);
        let mut tk = TopK::new(k);
        for i in 0..self.n {
            let code = &self.codes[i * self.msub..(i + 1) * self.msub];
            let bound = tk.bound();
            let mut d = 0.0f32;
            for (s, &c) in code.iter().enumerate() {
                d += lut[s][c as usize];
                if d > bound {
                    break;
                }
            }
            if d <= bound {
                tk.push(Neighbor::new(i as u64, d));
            }
        }
        let mut out = tk.into_sorted();
        for nb in &mut out {
            nb.dist = nb.dist.sqrt();
        }
        out
    }

    /// ADC shortlist + exact re-ranking ("ADC+R"): fetch `k·expand`
    /// candidates by table lookups, then re-rank them with true distances
    /// against the in-memory dataset. This is how the paper's OPQ
    /// configuration reaches MAP parity with HD-Index (§5, "Parameters") —
    /// and why its RAM footprint includes the raw data.
    pub fn knn_rerank(&self, data: &Dataset, query: &[f32], k: usize, expand: usize) -> Vec<Neighbor> {
        self.knn_rerank_shortlist(data, query, k, k * expand.max(1))
    }

    /// [`Self::knn_rerank`] with the shortlist size given directly (the
    /// refinement budget of the unified trait API).
    pub fn knn_rerank_shortlist(
        &self,
        data: &Dataset,
        query: &[f32],
        k: usize,
        shortlist: usize,
    ) -> Vec<Neighbor> {
        assert_eq!(data.len(), self.n, "dataset/codes mismatch");
        let k = k.min(self.n);
        if k == 0 {
            return Vec::new();
        }
        let shortlist = self.knn(query, shortlist.max(k).min(self.n));
        let mut tk = TopK::new(k);
        for c in shortlist {
            let bound = tk.bound();
            let d = l2_sq_bounded(query, data.get(c.id as usize), bound);
            if d <= bound {
                tk.push(Neighbor::new(c.id, d));
            }
        }
        let mut out = tk.into_sorted();
        for nb in &mut out {
            nb.dist = nb.dist.sqrt();
        }
        out
    }

    /// Mean squared reconstruction error over a dataset — the quantity OPQ's
    /// rotation minimizes (lower is better).
    pub fn distortion(&self, data: &Dataset) -> f64 {
        assert_eq!(data.len(), self.n);
        let mut total = 0.0f64;
        for (i, p) in data.iter().enumerate() {
            total += l2_sq(p, &self.reconstruct(i)) as f64;
        }
        total / self.n as f64
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// RAM footprint: codes (n·M bytes) + codebooks.
    pub fn memory_bytes(&self) -> usize {
        self.codes.capacity()
            + self
                .codebooks
                .iter()
                .flat_map(|cb| cb.iter().map(|c| c.capacity() * 4))
                .sum::<usize>()
    }
}


/// A [`Pq`] bundled with the corpus it encodes, so ADC shortlists are
/// exactly re-ranked through the unified trait — the paper's "ADC+R"
/// operating point, whose RAM footprint deliberately includes the raw data
/// (§2.2.5: quantization methods keep the corpus resident).
pub struct PqRerank<'a> {
    pub pq: Pq,
    pub data: &'a Dataset,
}

impl AnnIndex for PqRerank<'_> {
    fn len(&self) -> u64 {
        self.pq.len() as u64
    }

    fn dim(&self) -> usize {
        self.pq.dim
    }

    /// `refine` overrides the exact-rerank shortlist size (default `20·k`,
    /// the §5 "Parameters" expansion); `candidates` does not apply (ADC
    /// scans every code).
    fn search_core(&self, query: &[f32], req: &SearchRequest) -> std::io::Result<SearchOutput> {
        let shortlist = req.refine.unwrap_or(req.k.saturating_mul(20));
        Ok(SearchOutput::from_neighbors(self.pq.knn_rerank_shortlist(
            self.data, query, req.k, shortlist,
        )))
    }

    fn stats(&self) -> IndexStats {
        IndexStats::in_memory(self.pq.memory_bytes() + self.data.memory_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_core::dataset::{generate, DatasetProfile};
    use hd_core::ground_truth::ground_truth_knn;
    use hd_core::metrics::score_workload;

    fn small() -> PqParams {
        PqParams {
            m_subspaces: 8,
            k_sub: 32,
            train_size: 1500,
            kmeans_iters: 8,
            seed: 1,
        }
    }

    #[test]
    fn bounds_partition_all_dims() {
        let b = subspace_bounds(100, 8);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 100);
        for w in b.windows(2) {
            let width = w[1] - w[0];
            assert!(width == 12 || width == 13);
        }
    }

    #[test]
    fn codes_are_within_ksub() {
        let (data, _) = generate(&DatasetProfile::SIFT, 500, 1, 51);
        let pq = Pq::build(&data, small());
        assert!(pq.codes.iter().all(|&c| (c as usize) < 32));
        assert_eq!(pq.codes.len(), 500 * 8);
    }

    #[test]
    fn adc_alone_beats_random_and_rerank_restores_quality() {
        let (data, queries) = generate(&DatasetProfile::SIFT, 3000, 10, 52);
        // `small()`'s 32 centroids/subspace cannot resolve within-cluster
        // ranking on 128-dim concentrated data (ADC recall ≈ right-cluster
        // chance, 10/500); 64 centroids with a full training pass can.
        let pq = Pq::build(
            &data,
            PqParams {
                k_sub: 64,
                train_size: 3000,
                kmeans_iters: 15,
                ..small()
            },
        );
        let truth = ground_truth_knn(&data, &queries, 10, 4);
        // Raw ADC ranking is coarse (quantization noise ≈ within-cluster
        // distance spread) but must be far better than chance (10/3000).
        let adc: Vec<Vec<Neighbor>> = queries.iter().map(|q| pq.knn(q, 10)).collect();
        let s_adc = score_workload(&truth, &adc);
        assert!(s_adc.recall > 0.03, "ADC recall at chance level: {}", s_adc.recall);
        // ADC + exact re-ranking (the paper's OPQ operating point).
        let rr: Vec<Vec<Neighbor>> =
            queries.iter().map(|q| pq.knn_rerank(&data, q, 10, 20)).collect();
        let s_rr = score_workload(&truth, &rr);
        assert!(s_rr.recall > 0.4, "re-ranked recall too low: {}", s_rr.recall);
        assert!(s_rr.recall >= s_adc.recall);
    }

    #[test]
    fn reconstruction_beats_random_baseline() {
        let (data, _) = generate(&DatasetProfile::SIFT, 1000, 1, 53);
        let pq = Pq::build(&data, small());
        let distortion = pq.distortion(&data);
        // Compare with the variance of the data (distortion of a rank-0
        // quantizer that reconstructs the global mean).
        let dim = data.dim();
        let mut mean = vec![0.0f64; dim];
        for p in data.iter() {
            for (m, &v) in mean.iter_mut().zip(p) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= data.len() as f64;
        }
        let meanf: Vec<f32> = mean.iter().map(|&m| m as f32).collect();
        let var: f64 = data
            .iter()
            .map(|p| l2_sq(p, &meanf) as f64)
            .sum::<f64>()
            / data.len() as f64;
        assert!(
            distortion < var * 0.8,
            "PQ distortion {distortion} not better than global mean {var}"
        );
    }

    #[test]
    fn adc_distance_estimates_track_true_distances() {
        let (data, queries) = generate(&DatasetProfile::SIFT, 800, 3, 54);
        let pq = Pq::build(&data, small());
        // For the single nearest neighbor, the ADC estimate should be within
        // a small factor of the true distance on average.
        for q in queries.iter() {
            let est = pq.knn(q, 1)[0];
            let true_d = hd_core::distance::l2(q, data.get(est.id as usize));
            assert!(
                (est.dist - true_d).abs() <= 0.5 * true_d + 50.0,
                "ADC estimate {} vs true {}",
                est.dist,
                true_d
            );
        }
    }
}
