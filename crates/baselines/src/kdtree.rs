//! In-memory kd-tree with best-first *incremental* nearest-neighbor search
//! (Hjaltason & Samet). SRS uses this to enumerate its 6-dimensional
//! projected points in strictly increasing projected distance.
//!
//! Points are stored **leaf-contiguous**: after the recursive median build,
//! the point table is permuted so every leaf owns one flat row-major block,
//! scored in a single [`Metric::key_batch`] sweep (original ids are carried
//! in a side table, so the public API still speaks caller ids).
//!
//! The tree serves every *additive per-axis* metric — L2, L1, and
//! cosine-as-normalized-L2 — because its split-plane pruning bound is a sum
//! of one term per constrained axis (`gap²` for L2/Cosine, `|gap|` for L1),
//! each a valid per-axis lower bound. The dot product admits no such
//! spatial bound (a far cell can hold the best inner product), so it is
//! refused at build time.

use hd_core::api::{AnnIndex, IndexStats, SearchOutput, SearchRequest};
use hd_core::dataset::Dataset;
use hd_core::metric::Metric;
use hd_core::topk::{Neighbor, TopK};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::io;

#[derive(Debug)]
enum Node {
    Leaf {
        /// Row range `[start, end)` in the leaf-contiguous point table.
        start: u32,
        end: u32,
    },
    Split {
        axis: usize,
        value: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A static kd-tree over low-dimensional points.
#[derive(Debug)]
pub struct KdTree {
    dim: usize,
    /// Row-major, permuted so each leaf's rows are contiguous.
    points: Vec<f32>,
    /// Row → original (caller) id.
    ids: Vec<u32>,
    /// Original id → row.
    rows: Vec<u32>,
    root: Node,
    len: usize,
    metric: Metric,
}

const LEAF_SIZE: usize = 16;

impl KdTree {
    /// Builds by recursive median splits (axes cycled by depth), serving
    /// the dataset's recorded metric. An empty dataset yields an empty
    /// (but queryable) tree.
    ///
    /// # Panics
    /// Panics for [`Metric::Dot`]: the split-plane pruning bound needs a
    /// per-axis distance decomposition, which the inner product lacks.
    pub fn build(data: &Dataset) -> Self {
        assert!(
            data.metric().is_metric_space(),
            "kd-tree pruning requires a per-axis metric decomposition; {} has none",
            data.metric()
        );
        let dim = data.dim();
        let points = data.as_flat();
        let n = data.len();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let root = Self::build_node(dim, points, &mut idx, 0, 0);
        // Permute rows into leaf order so leaves are flat blocks — the only
        // owned copy of the point table the tree keeps.
        let mut reordered = Vec::with_capacity(points.len());
        let mut rows = vec![0u32; n];
        for (row, &id) in idx.iter().enumerate() {
            reordered.extend_from_slice(&points[id as usize * dim..(id as usize + 1) * dim]);
            rows[id as usize] = row as u32;
        }
        Self {
            dim,
            points: reordered,
            ids: idx,
            rows,
            root,
            len: n,
            metric: data.metric(),
        }
    }

    /// The per-axis contribution of a split-plane gap to the pruning bound:
    /// `gap²` for L2/Cosine (whose key is squared L2), `|gap|` for L1. Both
    /// keys are sums of independent per-axis terms, which is exactly what
    /// lets the bound replace one axis's term as the traversal descends.
    #[inline]
    fn axis_term(&self, gap: f32) -> f32 {
        match self.metric {
            Metric::L1 => gap.abs(),
            _ => gap * gap,
        }
    }

    fn build_node(dim: usize, pts: &[f32], idx: &mut [u32], depth: usize, offset: usize) -> Node {
        if idx.len() <= LEAF_SIZE {
            return Node::Leaf {
                start: offset as u32,
                end: (offset + idx.len()) as u32,
            };
        }
        let axis = depth % dim;
        let mid = idx.len() / 2;
        idx.select_nth_unstable_by(mid, |&a, &b| {
            let va = pts[a as usize * dim + axis];
            let vb = pts[b as usize * dim + axis];
            va.partial_cmp(&vb).unwrap_or(Ordering::Equal)
        });
        let value = pts[idx[mid] as usize * dim + axis];
        let (lo, hi) = idx.split_at_mut(mid);
        Node::Split {
            axis,
            value,
            left: Box::new(Self::build_node(dim, pts, lo, depth + 1, offset)),
            right: Box::new(Self::build_node(dim, pts, hi, depth + 1, offset + mid)),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The point originally inserted as row `id` of the input table.
    pub fn point(&self, id: u32) -> &[f32] {
        let row = self.rows[id as usize] as usize;
        &self.points[row * self.dim..(row + 1) * self.dim]
    }

    /// Heap bytes held by the tree (points + id maps + topology estimate).
    pub fn memory_bytes(&self) -> usize {
        self.points.capacity() * 4
            + self.ids.capacity() * 4
            + self.rows.capacity() * 4
            + self.len * 8
    }

    /// Begins an incremental NN traversal from `query` (normalized here
    /// when the metric requires it, so callers pass raw queries).
    pub fn incremental_nn<'a>(&'a self, query: &[f32]) -> IncrementalNn<'a> {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        let mut query = query.to_vec();
        self.metric.normalize_for_index(&mut query);
        let mut it = IncrementalNn {
            tree: self,
            query,
            heap: BinaryHeap::new(),
            scratch: Vec::with_capacity(LEAF_SIZE),
        };
        it.heap.push(HeapItem {
            dist: 0.0,
            kind: ItemKind::Node(&self.root, Vec::new()),
        });
        it
    }
}

enum ItemKind<'a> {
    /// Node plus the axis-distance contributions that define its bounding
    /// slab (enough for correct min-distance: each split adds a per-axis
    /// lower-bound term).
    Node(&'a Node, Vec<(usize, f32)>),
    Point(u32),
}

struct HeapItem<'a> {
    dist: f32,
    kind: ItemKind<'a>,
}

impl PartialEq for HeapItem<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapItem<'_> {}
impl PartialOrd for HeapItem<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
    }
}

/// Iterator yielding `(id, key)` in non-decreasing metric key (squared L2
/// for L2/Cosine trees, the L1 sum for L1 trees).
pub struct IncrementalNn<'a> {
    tree: &'a KdTree,
    query: Vec<f32>,
    heap: BinaryHeap<HeapItem<'a>>,
    /// Reusable per-leaf distance buffer for the batch kernel.
    scratch: Vec<f32>,
}

impl Iterator for IncrementalNn<'_> {
    type Item = (u32, f32);

    fn next(&mut self) -> Option<(u32, f32)> {
        while let Some(HeapItem { dist, kind }) = self.heap.pop() {
            match kind {
                ItemKind::Point(id) => return Some((id, dist)),
                ItemKind::Node(node, bounds) => match node {
                    Node::Leaf { start, end } => {
                        // The leaf's rows are one contiguous block: score
                        // them in a single batched sweep (bit-identical to
                        // the per-point metric key).
                        let (s, e) = (*start as usize, *end as usize);
                        let dim = self.tree.dim;
                        let block = &self.tree.points[s * dim..e * dim];
                        self.tree.metric.key_batch(&self.query, block, &mut self.scratch);
                        for (r, &d) in self.scratch.iter().enumerate() {
                            self.heap.push(HeapItem {
                                dist: d,
                                kind: ItemKind::Point(self.tree.ids[s + r]),
                            });
                        }
                    }
                    Node::Split {
                        axis,
                        value,
                        left,
                        right,
                    } => {
                        let q = self.query[*axis];
                        // The child on the query's side inherits the parent
                        // bound; the other side's bound on `axis` becomes at
                        // least (q - value)².
                        let (near, far): (&Node, &Node) = if q <= *value {
                            (left, right)
                        } else {
                            (right, left)
                        };
                        self.heap.push(HeapItem {
                            dist,
                            kind: ItemKind::Node(near, bounds.clone()),
                        });
                        let gap = q - *value;
                        let mut far_bounds = bounds;
                        // Replace (don't stack) the bound for this axis.
                        let term = self.tree.axis_term(gap);
                        let mut far_dist = dist;
                        if let Some(slot) = far_bounds.iter_mut().find(|(a, _)| a == axis) {
                            if term > slot.1 {
                                far_dist = far_dist - slot.1 + term;
                                slot.1 = term;
                            }
                        } else {
                            far_bounds.push((*axis, term));
                            far_dist += term;
                        }
                        self.heap.push(HeapItem {
                            dist: far_dist,
                            kind: ItemKind::Node(far, far_bounds),
                        });
                    }
                },
            }
        }
        None
    }
}

impl AnnIndex for KdTree {
    fn len(&self) -> u64 {
        self.len as u64
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    /// Exact search by incremental-NN enumeration; ties at the k-th
    /// distance are resolved by id through the [`TopK`] ordering. The
    /// budget knobs do not apply.
    fn search_core(&self, query: &[f32], req: &SearchRequest) -> io::Result<SearchOutput> {
        let mut tk = TopK::new(req.k);
        for (id, key) in self.incremental_nn(query) {
            if tk.len() == req.k && key > tk.bound() {
                break;
            }
            tk.push(Neighbor::new(u64::from(id), key));
        }
        let mut out = tk.into_sorted();
        for nb in &mut out {
            nb.dist = self.metric.finalize(nb.dist);
        }
        Ok(SearchOutput::from_neighbors(out))
    }

    fn stats(&self) -> IndexStats {
        IndexStats::in_memory(self.memory_bytes()).with_metric(self.metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_core::distance::l2_sq;
    use hd_core::dataset::Dataset;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n * dim).map(|_| rng.gen_range(-10.0..10.0)).collect()
    }

    #[test]
    fn incremental_order_is_nondecreasing() {
        let pts = random_points(500, 6, 1);
        let tree = KdTree::build(&Dataset::from_flat(6, pts));
        let q = vec![0.5f32; 6];
        let mut prev = -1.0f32;
        let mut count = 0;
        for (_, d) in tree.incremental_nn(&q) {
            assert!(d >= prev, "distance regressed: {d} < {prev}");
            prev = d;
            count += 1;
        }
        assert_eq!(count, 500, "every point must be yielded exactly once");
    }

    #[test]
    fn first_yield_is_true_nearest() {
        for seed in 0..5 {
            let pts = random_points(300, 4, seed);
            let tree = KdTree::build(&Dataset::from_flat(4, pts.clone()));
            let q: Vec<f32> = random_points(1, 4, seed + 100);
            let (id, d) = tree.incremental_nn(&q).next().unwrap();
            // Brute force.
            let mut best = (0u32, f32::INFINITY);
            for i in 0..300 {
                let dd = l2_sq(&q, &pts[i * 4..(i + 1) * 4]);
                if dd < best.1 {
                    best = (i as u32, dd);
                }
            }
            assert_eq!(d, best.1, "seed {seed}");
            assert_eq!(id, best.0, "seed {seed}");
        }
    }

    #[test]
    fn prefix_matches_brute_force_topk() {
        let pts = random_points(400, 6, 9);
        let tree = KdTree::build(&Dataset::from_flat(6, pts.clone()));
        let q: Vec<f32> = random_points(1, 6, 77);
        let got: Vec<u32> = tree.incremental_nn(&q).take(10).map(|(i, _)| i).collect();
        let mut all: Vec<(f32, u32)> = (0..400)
            .map(|i| (l2_sq(&q, &pts[i * 6..(i + 1) * 6]), i as u32))
            .collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let expect: Vec<u32> = all[..10].iter().map(|&(_, i)| i).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn point_lookup_survives_leaf_reordering() {
        let pts = random_points(200, 3, 5);
        let tree = KdTree::build(&Dataset::from_flat(3, pts.clone()));
        for id in 0..200u32 {
            assert_eq!(
                tree.point(id),
                &pts[id as usize * 3..(id as usize + 1) * 3],
                "id {id} lost its point in the leaf permutation"
            );
        }
    }

    #[test]
    fn l1_tree_enumerates_in_true_l1_order() {
        use hd_core::distance::l1;
        let pts = random_points(400, 5, 3);
        let data = Dataset::from_flat(5, pts.clone()).with_metric(Metric::L1);
        let tree = KdTree::build(&data);
        let q: Vec<f32> = random_points(1, 5, 33);
        let mut prev = -1.0f32;
        let mut count = 0;
        for (id, key) in tree.incremental_nn(&q) {
            assert!(key >= prev, "L1 key regressed: {key} < {prev}");
            assert_eq!(
                key,
                l1(&q, &pts[id as usize * 5..(id as usize + 1) * 5]),
                "key is not the true L1 distance of id {id}"
            );
            prev = key;
            count += 1;
        }
        assert_eq!(count, 400);
    }

    #[test]
    fn cosine_tree_matches_exact_cosine_scan() {
        use hd_core::ground_truth::knn_exact;
        let pts = random_points(300, 6, 4);
        let data = Dataset::from_flat(6, pts).with_metric(Metric::Cosine);
        let tree = KdTree::build(&data);
        for seed in 0..4 {
            let q: Vec<f32> = random_points(1, 6, 200 + seed);
            let got = hd_core::api::AnnIndex::search(
                &tree,
                &q,
                &hd_core::api::SearchRequest::new(8),
            )
            .unwrap();
            assert_eq!(got.neighbors, knn_exact(&data, &q, 8), "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "per-axis metric decomposition")]
    fn dot_trees_are_refused() {
        let data = Dataset::from_flat(2, vec![1.0, 2.0]).with_metric(Metric::Dot);
        KdTree::build(&data);
    }

    #[test]
    fn single_point_tree() {
        let tree = KdTree::build(&Dataset::from_flat(3, vec![1.0, 2.0, 3.0]));
        let out: Vec<(u32, f32)> = tree.incremental_nn(&[1.0, 2.0, 3.0]).collect();
        assert_eq!(out, vec![(0, 0.0)]);
    }

    #[test]
    fn duplicate_points_all_yielded() {
        let mut pts = Vec::new();
        for _ in 0..50 {
            pts.extend_from_slice(&[1.0f32, 1.0]);
        }
        let tree = KdTree::build(&Dataset::from_flat(2, pts));
        assert_eq!(tree.incremental_nn(&[0.0, 0.0]).count(), 50);
    }
}
