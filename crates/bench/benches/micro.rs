//! Criterion micro-benchmarks backing the design-choice claims:
//!
//! * Hilbert encode/decode cost (the O(ω·η) term of §3.5.1),
//! * distance kernel throughput,
//! * triangular vs Ptolemaic filter kernels (the ~m/2× CPU gap behind the
//!   1.5–2× query-time difference of §5.2.5),
//! * B+-tree point lookups and cursor scans.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hd_core::dataset::{generate, DatasetProfile};
use hd_hilbert::HilbertCurve;
use hd_index::filters::{ptolemaic_lb, triangular_lb};
use hd_index::reference::select;
use hd_index::RefSelection;
use std::hint::black_box;

fn bench_hilbert(c: &mut Criterion) {
    let mut g = c.benchmark_group("hilbert");
    g.sample_size(30);
    for (dims, order) in [(16usize, 8u32), (24, 32), (64, 32)] {
        let curve = HilbertCurve::new(dims, order);
        let cells = if order == 32 { u32::MAX as u64 } else { (1 << order) - 1 };
        let point: Vec<u64> = (0..dims).map(|i| (i as u64 * 7919) % (cells + 1)).collect();
        g.bench_function(format!("encode_{dims}d_w{order}"), |b| {
            b.iter(|| curve.encode(black_box(&point)))
        });
        let key = curve.encode(&point);
        g.bench_function(format!("decode_{dims}d_w{order}"), |b| {
            b.iter(|| curve.decode(black_box(&key)))
        });
    }
    g.finish();
}

fn bench_distance(c: &mut Criterion) {
    use hd_core::distance::{l2_sq, l2_sq_batch, l2_sq_bounded};
    let mut g = c.benchmark_group("distance");
    g.sample_size(50);
    for dim in [128usize, 512, 1369] {
        let a: Vec<f32> = (0..dim).map(|i| i as f32 * 0.31).collect();
        let b_: Vec<f32> = (0..dim).map(|i| (dim - i) as f32 * 0.17).collect();
        g.bench_function(format!("l2_sq_{dim}d"), |b| {
            b.iter(|| l2_sq(black_box(&a), black_box(&b_)))
        });
        // Tight bound (1/16 of the true distance): the early-abandon case
        // the refinement pipeline hits once its top-k radius stabilizes.
        let tight = l2_sq(&a, &b_) / 16.0;
        g.bench_function(format!("l2_sq_bounded_tight_{dim}d"), |b| {
            b.iter(|| l2_sq_bounded(black_box(&a), black_box(&b_), black_box(tight)))
        });
        // Infinite bound: the full-evaluation overhead of the bound checks.
        g.bench_function(format!("l2_sq_bounded_full_{dim}d"), |b| {
            b.iter(|| l2_sq_bounded(black_box(&a), black_box(&b_), f32::INFINITY))
        });
    }
    // One heap page of SIFT vectors (8 × 128d), the refinement block shape.
    let q: Vec<f32> = (0..128).map(|i| i as f32 * 0.31).collect();
    let block: Vec<f32> = (0..8 * 128).map(|i| (i % 251) as f32 * 0.5).collect();
    let mut out = Vec::with_capacity(8);
    g.bench_function("l2_sq_batch_8x128d", |b| {
        b.iter(|| l2_sq_batch(black_box(&q), black_box(&block), &mut out))
    });
    g.finish();
}

fn bench_filters(c: &mut Criterion) {
    // m = 10 reference objects, the paper's default.
    let (data, _) = generate(&DatasetProfile::SIFT, 2000, 1, 3);
    let refs = select(&data, 10, RefSelection::Sss { f: 0.3 }, 1);
    let mut qd = Vec::new();
    let mut od = Vec::new();
    refs.distances_to(data.get(0), &mut qd);
    refs.distances_to(data.get(999), &mut od);

    let mut g = c.benchmark_group("filters_m10");
    g.sample_size(50);
    g.bench_function("triangular_lb", |b| {
        b.iter(|| triangular_lb(black_box(&qd), black_box(&od)))
    });
    g.bench_function("ptolemaic_lb", |b| {
        b.iter(|| ptolemaic_lb(black_box(&qd), black_box(&od), black_box(&refs)))
    });
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    use hd_btree::BTree;
    use hd_storage::{BufferPool, Pager};
    use std::sync::Arc;

    let dir = std::env::temp_dir().join("hd_bench_btree");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("bench_{}", std::process::id()));
    let pager = Pager::create(&path).unwrap();
    let pool = Arc::new(BufferPool::new(pager, 4096));
    let mut tree = BTree::create(Arc::clone(&pool), 8, 8).unwrap();
    tree.bulk_load(
        (0..100_000u64).map(|i| (i.to_be_bytes().to_vec(), i.to_le_bytes().to_vec())),
        1.0,
    )
    .unwrap();

    let mut g = c.benchmark_group("btree_100k");
    g.sample_size(50);
    g.bench_function("point_lookup_cached", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i * 2654435761 + 1) % 100_000;
            tree.get(black_box(&i.to_be_bytes())).unwrap()
        })
    });
    g.bench_function("scan_256_from_seek", |b| {
        b.iter_batched(
            || tree.seek(&50_000u64.to_be_bytes()).unwrap(),
            |mut cur| {
                let mut sum = 0u64;
                for _ in 0..256 {
                    if !cur.valid() {
                        break;
                    }
                    sum += cur.value()[0] as u64;
                    cur.advance().unwrap();
                }
                sum
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
    std::fs::remove_file(path).ok();
}

criterion_group!(benches, bench_hilbert, bench_distance, bench_filters, bench_btree);
criterion_main!(benches);
