//! End-to-end query benchmarks: one HD-Index kANN query under the two
//! filter pipelines (the wall-clock counterpart of Fig. 5), plus an HNSW
//! and a linear-scan reference point on the same workload.

use criterion::{criterion_group, criterion_main, Criterion};
use hd_baselines::hnsw::{Hnsw, HnswParams};
use hd_baselines::linear::LinearScan;
use hd_core::dataset::{generate, DatasetProfile};
use hd_index::{HdIndex, HdIndexParams, QueryParams};
use std::hint::black_box;

fn bench_query(c: &mut Criterion) {
    let (data, queries) = generate(&DatasetProfile::SIFT, 10_000, 8, 7);
    let dir = std::env::temp_dir().join(format!("hd_bench_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let params = HdIndexParams::for_profile(&DatasetProfile::SIFT);
    let index = HdIndex::build(&data, &params, &dir).unwrap();
    let hnsw = Hnsw::build(&data, HnswParams::default());
    let linear = LinearScan::new(&data);

    let mut g = c.benchmark_group("query_sift10k_k10");
    g.sample_size(20);
    let mut qi = 0usize;
    let mut next_q = || {
        qi = (qi + 1) % queries.len();
        queries.get(qi)
    };

    let tri = QueryParams::triangular(1024, 256, 10);
    g.bench_function("hd_index_triangular", |b| {
        b.iter(|| index.knn(black_box(next_q()), &tri).unwrap())
    });
    let pto = QueryParams::ptolemaic(1024, 512, 256, 10);
    g.bench_function("hd_index_ptolemaic", |b| {
        b.iter(|| index.knn(black_box(next_q()), &pto).unwrap())
    });
    // §5.2.8 / §6 extension: per-tree parallel candidate generation.
    g.bench_function("hd_index_triangular_parallel", |b| {
        b.iter(|| index.knn_parallel(black_box(next_q()), &tri).unwrap())
    });
    g.bench_function("hnsw", |b| b.iter(|| hnsw.knn(black_box(next_q()), 10)));
    g.bench_function("linear_scan", |b| {
        b.iter(|| linear.knn(black_box(next_q()), 10))
    });
    g.finish();
    std::fs::remove_dir_all(dir).ok();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
