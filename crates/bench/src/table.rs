//! Fixed-width table printing for experiment output.

/// Prints a header row followed by a rule.
pub fn header(title: &str, cols: &[&str], widths: &[usize]) {
    println!("\n=== {title} ===");
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().min(120)));
}

/// Prints one data row (cells pre-formatted).
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{line}");
}

/// Formats a float with 3 decimals, or a dash for NaN (method not run).
pub fn f3(v: f64) -> String {
    if v.is_nan() {
        "—".into()
    } else {
        format!("{v:.3}")
    }
}

/// Formats milliseconds adaptively.
pub fn ms(v: f64) -> String {
    if v.is_nan() {
        "—".into()
    } else if v < 1.0 {
        format!("{:.0}µs", v * 1000.0)
    } else if v < 1000.0 {
        format!("{v:.2}ms")
    } else {
        format!("{:.2}s", v / 1000.0)
    }
}

/// Formats a fraction (0..=1) as a percentage with one decimal, or a dash
/// for NaN. Used for tombstone-density and space-overhead columns.
pub fn pct(v: f64) -> String {
    if v.is_nan() {
        "—".into()
    } else {
        format!("{:.1}%", v * 100.0)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn formatting_helpers() {
        assert_eq!(super::f3(0.12345), "0.123");
        assert_eq!(super::f3(f64::NAN), "—");
        assert_eq!(super::ms(0.5), "500µs");
        assert_eq!(super::ms(12.345), "12.35ms");
        assert_eq!(super::ms(2500.0), "2.50s");
        assert_eq!(super::pct(0.2994), "29.9%");
        assert_eq!(super::pct(f64::NAN), "—");
    }
}
