//! Parameter-study support for the Figure 4/5/6/10 family: those binaries
//! measure *HD-Index variants* (custom construction and query parameters),
//! not the comparative lineup, so they build the variant here and hand it to
//! the generic measurement core ([`methods::run_built`]).

use crate::methods::{self, MethodOutcome, Workload};
use hd_core::topk::Neighbor;
use hd_index::{HdIndex, HdIndexParams, QueryParams};
use std::path::Path;
use std::time::Instant;

/// Builds an HD-Index variant with explicit construction parameters and
/// serve-time [`QueryParams`] (filter kind, α/β/γ), then measures it with
/// the same generic runner the registry uses. `qp.k` is ignored — `k` rules.
pub fn run_hd_variant(
    w: &Workload,
    k: usize,
    truth: &[Vec<Neighbor>],
    dir: &Path,
    params: &HdIndexParams,
    qp: &QueryParams,
) -> MethodOutcome {
    // Parameter studies inherit the workload metric like every registry
    // method: a Ptolemaic-filter variant cannot run under a metric where
    // the bound is unsound (validate would panic mid-query otherwise).
    if qp.filter == hd_index::FilterKind::TriangularPtolemaic && !w.metric.supports_ptolemaic() {
        return MethodOutcome::NotPossible(
            "HD-Index",
            format!("the Ptolemaic filter is unsound under {}", w.metric),
        );
    }
    let t0 = Instant::now();
    let mut index = match HdIndex::build(&w.data, params, dir.join("hdindex")) {
        Ok(i) => i,
        Err(e) => return MethodOutcome::NotPossible("HD-Index", e.to_string()),
    };
    let build_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let mut qp = *qp;
    qp.k = k;
    index.set_serve_params(qp);
    methods::run_built("HD-Index", w, k, truth, &index, build_ms)
}
