//! The method registry and the single generic runner behind every
//! comparative experiment: build an index behind `Box<dyn AnnIndex>`,
//! answer a query workload, score it against exact ground truth, and
//! account time / disk / memory / IO the way §5 reports them.
//!
//! Adding a method to every comparative figure is one [`MethodSpec`] entry;
//! selecting methods on the command line (`--methods hd-index,pq`) works on
//! any registry-driven binary for free.

use hd_baselines::hnsw::{Hnsw, HnswParams};
use hd_baselines::idistance::{IDistance, IDistanceParams};
use hd_baselines::kdtree::KdTree;
use hd_baselines::linear::{DiskLinearScan, LinearScan};
use hd_baselines::lsh::c2lsh::{C2lsh, C2lshParams};
use hd_baselines::lsh::e2lsh::{E2lsh, E2lshParams};
use hd_baselines::lsh::qalsh::{Qalsh, QalshParams};
use hd_baselines::lsh::srs::{Srs, SrsParams};
use hd_baselines::multicurves::{Multicurves, MulticurvesParams};
use hd_baselines::quantization::{Opq, OpqParams, OpqRerank, Pq, PqParams, PqRerank};
use hd_baselines::vafile::{VaFile, VaFileParams};
use hd_core::api::{AnnIndex, SearchRequest};
use hd_core::dataset::{generate, Dataset, DatasetProfile};
use hd_core::ground_truth::ground_truth_knn;
use hd_core::metric::Metric;
use hd_core::metrics::score_workload;
use hd_core::topk::Neighbor;
use hd_engine::{Engine, EngineParams};
use hd_index::{HdIndex, HdIndexParams};
use std::io;
use std::path::Path;
use std::time::Instant;

/// A named dataset + query set drawn from one of the paper's profiles,
/// searched under one [`Metric`] (recorded on the dataset; cosine workloads
/// are unit-normalized at creation).
pub struct Workload {
    pub name: String,
    pub profile: DatasetProfile,
    pub data: Dataset,
    pub queries: Dataset,
    pub metric: Metric,
}

impl Workload {
    pub fn new(name: impl Into<String>, profile: DatasetProfile, n: usize, nq: usize, seed: u64) -> Self {
        Self::with_metric(name, profile, n, nq, seed, Metric::L2)
    }

    /// [`Self::new`] under an explicit metric. The same seed generates the
    /// same raw vectors for every metric; only the build-time preparation
    /// (cosine normalization) differs.
    pub fn with_metric(
        name: impl Into<String>,
        profile: DatasetProfile,
        n: usize,
        nq: usize,
        seed: u64,
        metric: Metric,
    ) -> Self {
        let (data, queries) = generate(&profile, n, nq, seed);
        Self {
            name: name.into(),
            profile,
            data: data.with_metric(metric),
            queries,
            metric,
        }
    }

    /// Exact ground truth at depth `k` (multi-threaded scan) in the
    /// workload metric.
    pub fn truth(&self, k: usize) -> Vec<Vec<Neighbor>> {
        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
        ground_truth_knn(&self.data, &self.queries, k, threads)
    }

}

/// Uniform per-method measurements (§5's evaluation dimensions).
#[derive(Debug, Clone)]
pub struct MethodResult {
    pub method: &'static str,
    pub map: f64,
    pub ratio: f64,
    pub recall: f64,
    pub build_ms: f64,
    pub avg_query_ms: f64,
    pub index_disk_bytes: u64,
    /// Query-time resident memory of the index structure.
    pub query_mem_bytes: usize,
    /// Structural estimate of peak construction memory.
    pub build_mem_bytes: usize,
    pub avg_physical_reads: f64,
}

/// Either a result or the paper's CR/NP outcome with a reason.
pub enum MethodOutcome {
    Done(MethodResult),
    NotPossible(&'static str, String),
}

impl MethodOutcome {
    pub fn result(&self) -> Option<&MethodResult> {
        match self {
            MethodOutcome::Done(r) => Some(r),
            MethodOutcome::NotPossible(..) => None,
        }
    }
}

/// Where a registry entry appears in the default comparative lineup
/// (Fig. 1/7/8/9, Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineupRole {
    /// Always part of the lineup.
    Core,
    /// Included only when the caller asks for the (slow) exact reference.
    ExactReference,
    /// Registered — buildable, conformance-tested, selectable with
    /// `--methods` — but not in the default lineup.
    None,
}

/// Builds a boxed index over a workload. The HRTB lifetime lets in-memory
/// adapters (linear scan, PQ/OPQ rerank) borrow the workload's dataset
/// instead of cloning multi-megabyte corpora.
pub type BuildFn = for<'a> fn(&'a Workload, &'a Path) -> io::Result<Box<dyn AnnIndex + 'a>>;

/// Metric families a registry entry can declare. The brute-force and graph
/// methods take anything; tree/reference methods need metric-space axioms;
/// the rest are structurally L2-bound (ADC tables, VA bounds, Euclidean
/// LSH, radius arithmetic).
const ALL_METRICS: &[Metric] = &Metric::ALL;
const METRIC_SPACES: &[Metric] = &[Metric::L2, Metric::L1, Metric::Cosine];
const L2_ONLY: &[Metric] = &[Metric::L2];

/// One registered method: a CLI-friendly name, the paper's display label,
/// and a builder producing the method behind the unified trait.
pub struct MethodSpec {
    /// Registry key (`--methods` selector), kebab-case.
    pub name: &'static str,
    /// Display label matching the paper's tables.
    pub label: &'static str,
    /// Whether the method is exact (recall 1.0 by construction) — used by
    /// the conformance suite and the Fig. 1 exactness reference.
    pub exact: bool,
    pub lineup: LineupRole,
    /// The metrics this method can serve. [`run_method`] skips unsupported
    /// combinations with a CR/NP outcome, and the builders refuse them too
    /// (the registry declaration is the *announcement*, the builder guard
    /// the enforcement).
    pub supported_metrics: &'static [Metric],
    pub build: BuildFn,
}

impl MethodSpec {
    /// Whether this method can serve `metric`.
    pub fn supports(&self, metric: Metric) -> bool {
        self.supported_metrics.contains(&metric)
    }
}

/// Every method in the workspace, in default-lineup order (the paper's
/// Fig. 8 ordering), followed by the registered-only methods.
pub fn registry() -> &'static [MethodSpec] {
    static REGISTRY: &[MethodSpec] = &[
        MethodSpec {
            name: "hd-index",
            label: "HD-Index",
            exact: false,
            lineup: LineupRole::Core,
            supported_metrics: METRIC_SPACES,
            build: build_hd_index,
        },
        MethodSpec {
            name: "idistance",
            label: "iDistance",
            exact: true,
            lineup: LineupRole::ExactReference,
            supported_metrics: L2_ONLY,
            build: build_idistance,
        },
        MethodSpec {
            name: "multicurves",
            label: "Multicurves",
            exact: false,
            lineup: LineupRole::Core,
            supported_metrics: METRIC_SPACES,
            build: build_multicurves,
        },
        MethodSpec {
            name: "c2lsh",
            label: "C2LSH",
            exact: false,
            lineup: LineupRole::Core,
            supported_metrics: L2_ONLY,
            build: build_c2lsh,
        },
        MethodSpec {
            name: "qalsh",
            label: "QALSH",
            exact: false,
            lineup: LineupRole::Core,
            supported_metrics: L2_ONLY,
            build: build_qalsh,
        },
        MethodSpec {
            name: "srs",
            label: "SRS",
            exact: false,
            lineup: LineupRole::Core,
            supported_metrics: L2_ONLY,
            build: build_srs,
        },
        MethodSpec {
            name: "opq",
            label: "OPQ",
            exact: false,
            lineup: LineupRole::Core,
            supported_metrics: L2_ONLY,
            build: build_opq,
        },
        MethodSpec {
            name: "hnsw",
            label: "HNSW",
            exact: false,
            lineup: LineupRole::Core,
            supported_metrics: ALL_METRICS,
            build: build_hnsw,
        },
        MethodSpec {
            name: "pq",
            label: "PQ",
            exact: false,
            lineup: LineupRole::None,
            supported_metrics: L2_ONLY,
            build: build_pq,
        },
        MethodSpec {
            name: "e2lsh",
            label: "E2LSH",
            exact: false,
            lineup: LineupRole::None,
            supported_metrics: L2_ONLY,
            build: build_e2lsh,
        },
        MethodSpec {
            name: "vafile",
            label: "VA-file",
            exact: true,
            lineup: LineupRole::None,
            supported_metrics: L2_ONLY,
            build: build_vafile,
        },
        MethodSpec {
            name: "linear-scan",
            label: "LinearScan",
            exact: true,
            lineup: LineupRole::None,
            supported_metrics: ALL_METRICS,
            build: build_linear_scan,
        },
        MethodSpec {
            name: "disk-linear-scan",
            label: "DiskScan",
            exact: true,
            lineup: LineupRole::None,
            supported_metrics: ALL_METRICS,
            build: build_disk_linear_scan,
        },
        MethodSpec {
            name: "kdtree",
            label: "kd-tree",
            exact: true,
            lineup: LineupRole::None,
            supported_metrics: METRIC_SPACES,
            build: build_kdtree,
        },
        MethodSpec {
            name: "engine",
            label: "Engine",
            exact: false,
            lineup: LineupRole::None,
            supported_metrics: METRIC_SPACES,
            build: build_engine,
        },
    ];
    REGISTRY
}

/// Looks up a registry entry by its CLI name.
pub fn spec(name: &str) -> Option<&'static MethodSpec> {
    registry().iter().find(|s| s.name == name)
}

// ---------------------------------------------------------------------------
// Registered builders. Parameters follow §5 "Parameters" per profile; every
// count is clamped against the corpus so the registry stays buildable at any
// `--scale` (including the n = 1 conformance corner).
// ---------------------------------------------------------------------------

fn build_hd_index<'a>(w: &'a Workload, dir: &'a Path) -> io::Result<Box<dyn AnnIndex + 'a>> {
    let mut params = HdIndexParams::for_profile(&w.profile);
    params.num_references = params.num_references.min(w.data.len());
    // No domain fixup needed for cosine: the builder derives the unit-ball
    // domain from the dataset metric itself.
    let index = HdIndex::build(&w.data, &params, dir)?;
    // Serve defaults are the paper's recommended α = 4096, γ = 1024
    // triangular pipeline (clamped to n per query by the trait adapter).
    Ok(Box::new(index))
}

fn build_engine<'a>(w: &'a Workload, dir: &'a Path) -> io::Result<Box<dyn AnnIndex + 'a>> {
    let mut index = HdIndexParams::for_profile(&w.profile);
    index.num_references = index.num_references.min(w.data.len());
    let params = EngineParams {
        shards: 2.min(w.data.len()).max(1),
        ..EngineParams::new(index)
    };
    Ok(Box::new(Engine::build(&w.data, &params, dir)?))
}

fn build_idistance<'a>(w: &'a Workload, dir: &'a Path) -> io::Result<Box<dyn AnnIndex + 'a>> {
    let params = IDistanceParams {
        partitions: 64.min(w.data.len() / 10).max(1),
        ..Default::default()
    };
    Ok(Box::new(IDistance::build(&w.data, params, dir)?))
}

fn build_multicurves<'a>(w: &'a Workload, dir: &'a Path) -> io::Result<Box<dyn AnnIndex + 'a>> {
    let params = MulticurvesParams {
        tau: 8.min(w.data.dim()),
        hilbert_order: w.profile.hilbert_order,
        domain: (w.profile.lo, w.profile.hi),
        alpha: 4096.min(w.data.len()),
        cache_pages: 0,
    };
    Ok(Box::new(Multicurves::build(&w.data, params, dir)?))
}

fn build_c2lsh<'a>(w: &'a Workload, dir: &'a Path) -> io::Result<Box<dyn AnnIndex + 'a>> {
    Ok(Box::new(C2lsh::build(&w.data, C2lshParams::default(), dir)?))
}

fn build_qalsh<'a>(w: &'a Workload, dir: &'a Path) -> io::Result<Box<dyn AnnIndex + 'a>> {
    Ok(Box::new(Qalsh::build(&w.data, QalshParams::default(), dir)?))
}

fn build_srs<'a>(w: &'a Workload, dir: &'a Path) -> io::Result<Box<dyn AnnIndex + 'a>> {
    // The paper's t = 0.00242 assumes n ≥ 1M; floor the budget so small
    // workloads examine at least a few hundred points.
    let params = SrsParams {
        t: (0.00242f64).max(500.0 / w.data.len() as f64),
        ..Default::default()
    };
    Ok(Box::new(Srs::build(&w.data, params, dir)?))
}

fn build_e2lsh<'a>(w: &'a Workload, dir: &'a Path) -> io::Result<Box<dyn AnnIndex + 'a>> {
    Ok(Box::new(E2lsh::build(&w.data, E2lshParams::default(), dir)?))
}

fn build_vafile<'a>(w: &'a Workload, dir: &'a Path) -> io::Result<Box<dyn AnnIndex + 'a>> {
    let params = VaFileParams {
        bits: 8,
        domain: (w.profile.lo, w.profile.hi),
        cache_pages: 0,
    };
    Ok(Box::new(VaFile::build(&w.data, params, dir)?))
}

fn pq_params(w: &Workload) -> PqParams {
    PqParams {
        m_subspaces: 8.min(w.data.dim()),
        k_sub: 256.min(w.data.len()),
        train_size: 10_000,
        kmeans_iters: 10,
        seed: 11,
    }
}

fn build_pq<'a>(w: &'a Workload, _dir: &'a Path) -> io::Result<Box<dyn AnnIndex + 'a>> {
    hd_baselines::require_l2(&w.data, "PQ", "its ADC distance tables accumulate squared-L2 terms")?;
    let pq = Pq::build(&w.data, pq_params(w));
    Ok(Box::new(PqRerank { pq, data: &w.data }))
}

fn build_opq<'a>(w: &'a Workload, _dir: &'a Path) -> io::Result<Box<dyn AnnIndex + 'a>> {
    // Rotation learning solves a ν×ν Procrustes per iteration (O(ν³) Jacobi
    // SVD); beyond ~300 dims that dominates everything else, so the harness
    // falls back to the identity rotation (plain PQ codebooks) there — the
    // same quality envelope the paper's OPQ shows on SUN/Enron.
    hd_baselines::require_l2(&w.data, "OPQ", "its rotation objective and ADC tables are squared-L2")?;
    let opt_iters = if w.data.dim() > 300 { 0 } else { 6 };
    let params = OpqParams {
        pq: pq_params(w),
        opt_iters,
        opt_sample: 1500.min(w.data.len()),
    };
    let opq = Opq::build(&w.data, params);
    Ok(Box::new(OpqRerank { opq, data: &w.data }))
}

fn build_hnsw<'a>(w: &'a Workload, _dir: &'a Path) -> io::Result<Box<dyn AnnIndex + 'a>> {
    // Default ef_search = 96; the trait adapter floors the effective ef at
    // 2k per query — together the paper's (2k).max(96) operating point.
    Ok(Box::new(Hnsw::build(&w.data, HnswParams::default())))
}

fn build_linear_scan<'a>(w: &'a Workload, _dir: &'a Path) -> io::Result<Box<dyn AnnIndex + 'a>> {
    Ok(Box::new(LinearScan::new(&w.data)))
}

fn build_disk_linear_scan<'a>(w: &'a Workload, dir: &'a Path) -> io::Result<Box<dyn AnnIndex + 'a>> {
    std::fs::create_dir_all(dir)?;
    // One cache page: a sequential scan then reads each page exactly once.
    Ok(Box::new(DiskLinearScan::build(&w.data, dir.join("scan.heap"), 1)?))
}

fn build_kdtree<'a>(w: &'a Workload, _dir: &'a Path) -> io::Result<Box<dyn AnnIndex + 'a>> {
    Ok(Box::new(KdTree::build(&w.data)))
}

// ---------------------------------------------------------------------------
// The generic runner.
// ---------------------------------------------------------------------------

/// Builds `spec` over the workload and measures it — **the** runner every
/// comparative binary drives; there are no per-method variants.
pub fn run_method(
    spec: &MethodSpec,
    w: &Workload,
    k: usize,
    truth: &[Vec<Neighbor>],
    dir: &Path,
) -> MethodOutcome {
    if !spec.supports(w.metric) {
        return MethodOutcome::NotPossible(
            spec.label,
            format!("metric {} unsupported (serves: {})", w.metric, {
                let names: Vec<&str> = spec.supported_metrics.iter().map(|m| m.name()).collect();
                names.join(", ")
            }),
        );
    }
    let subdir = dir.join(spec.name);
    let t0 = Instant::now();
    let index = match (spec.build)(w, &subdir) {
        Ok(i) => i,
        Err(e) => return MethodOutcome::NotPossible(spec.label, e.to_string()),
    };
    let build_ms = t0.elapsed().as_secs_f64() * 1000.0;
    run_built(spec.label, w, k, truth, index.as_ref(), build_ms)
}

/// The measurement half of [`run_method`]: answers the workload through the
/// unified trait, scores it, and reads the uniform accounting. Parameter
/// sweeps (`sweep::run_hd_variant`) reuse it with hand-built indexes.
pub fn run_built(
    label: &'static str,
    w: &Workload,
    k: usize,
    truth: &[Vec<Neighbor>],
    index: &dyn AnnIndex,
    build_ms: f64,
) -> MethodOutcome {
    let req = SearchRequest::new(k);
    index.reset_io_stats();
    let t0 = Instant::now();
    let mut approx: Vec<Vec<Neighbor>> = Vec::with_capacity(w.queries.len());
    for q in w.queries.iter() {
        match index.search(q, &req) {
            Ok(out) => approx.push(out.neighbors),
            Err(e) => return MethodOutcome::NotPossible(label, e.to_string()),
        }
    }
    let query_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let stats = index.stats();

    let s = score_workload(truth, &approx);
    let nq = truth.len().max(1) as f64;
    MethodOutcome::Done(MethodResult {
        method: label,
        map: s.map,
        ratio: s.ratio,
        recall: s.recall,
        build_ms,
        avg_query_ms: query_ms / nq,
        index_disk_bytes: stats.disk_bytes,
        query_mem_bytes: stats.memory_bytes,
        build_mem_bytes: stats.build_memory_bytes,
        avg_physical_reads: stats.io.physical_reads as f64 / nq,
    })
}

/// Runs a list of registry names in order, skipping unknown names with a
/// warning on stderr (so `--methods` typos do not abort a long run).
pub fn run_methods(
    names: &[&str],
    w: &Workload,
    k: usize,
    truth: &[Vec<Neighbor>],
    dir: &Path,
) -> Vec<MethodOutcome> {
    names
        .iter()
        .filter_map(|name| match spec(name) {
            Some(s) => Some(run_method(s, w, k, truth, dir)),
            None => {
                eprintln!(
                    "warning: unknown method {name:?} (known: {})",
                    registry().iter().map(|s| s.name).collect::<Vec<_>>().join(", ")
                );
                None
            }
        })
        .collect()
}

/// The default lineup names of the Fig. 8 comparative study.
/// `include_exact` adds iDistance (slow; it is only the exactness
/// reference).
pub fn lineup_names(include_exact: bool) -> Vec<&'static str> {
    registry()
        .iter()
        .filter(|s| match s.lineup {
            LineupRole::Core => true,
            LineupRole::ExactReference => include_exact,
            LineupRole::None => false,
        })
        .map(|s| s.name)
        .collect()
}

/// Runs the comparative lineup on one workload: the default Fig. 8 methods,
/// or exactly `filter` (registry names, e.g. from `--methods`) when given.
pub fn run_lineup(
    w: &Workload,
    k: usize,
    truth: &[Vec<Neighbor>],
    dir: &Path,
    include_exact: bool,
    filter: Option<&[String]>,
) -> Vec<MethodOutcome> {
    let names: Vec<&str> = match filter {
        Some(f) => f.iter().map(|s| s.as_str()).collect(),
        None => lineup_names(include_exact),
    };
    run_methods(&names, w, k, truth, dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for s in registry() {
            assert!(seen.insert(s.name), "duplicate registry name {}", s.name);
            assert!(spec(s.name).is_some());
        }
        assert!(spec("no-such-method").is_none());
    }

    #[test]
    fn lineup_matches_fig8_ordering() {
        assert_eq!(
            lineup_names(true),
            vec!["hd-index", "idistance", "multicurves", "c2lsh", "qalsh", "srs", "opq", "hnsw"]
        );
        assert_eq!(lineup_names(false).len(), 7);
        assert!(!lineup_names(false).contains(&"idistance"));
    }

    #[test]
    fn generic_runner_produces_sane_numbers_for_hd_index() {
        let w = Workload::new("t", DatasetProfile::SIFT, 1500, 10, 1);
        let truth = w.truth(10);
        let dir = std::env::temp_dir().join(format!("hd_bench_m_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        match run_method(spec("hd-index").unwrap(), &w, 10, &truth, &dir) {
            MethodOutcome::Done(r) => {
                assert_eq!(r.method, "HD-Index");
                assert!(r.map > 0.3, "MAP {}", r.map);
                assert!(r.ratio >= 1.0);
                assert!(r.avg_query_ms > 0.0);
                assert!(r.index_disk_bytes > 0);
                assert!(r.avg_physical_reads > 0.0);
            }
            MethodOutcome::NotPossible(_, e) => panic!("should run: {e}"),
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn lineup_produces_all_methods() {
        let w = Workload::new("t", DatasetProfile::SIFT, 800, 5, 2);
        let truth = w.truth(5);
        let dir = std::env::temp_dir().join(format!("hd_bench_l_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = run_lineup(&w, 5, &truth, &dir, false, None);
        assert_eq!(out.len(), 7);
        for o in &out {
            if let MethodOutcome::Done(r) = o {
                assert!(r.map >= 0.0 && r.map <= 1.0, "{}: map {}", r.method, r.map);
            }
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn methods_filter_selects_by_name() {
        let w = Workload::new("t", DatasetProfile::SIFT, 400, 3, 3);
        let truth = w.truth(3);
        let dir = std::env::temp_dir().join(format!("hd_bench_f_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let filter = vec!["linear-scan".to_string(), "pq".to_string()];
        let out = run_lineup(&w, 3, &truth, &dir, true, Some(&filter));
        let labels: Vec<&str> = out.iter().filter_map(|o| o.result()).map(|r| r.method).collect();
        assert_eq!(labels, vec!["LinearScan", "PQ"]);
        std::fs::remove_dir_all(dir).ok();
    }
}
