//! Standardized method runners: build an index, answer a query workload,
//! score it against exact ground truth, and account time / disk / memory /
//! IO the way §5 reports them.

use hd_baselines::hnsw::{Hnsw, HnswParams};
use hd_baselines::idistance::{IDistance, IDistanceParams};
use hd_baselines::lsh::c2lsh::{C2lsh, C2lshParams};
use hd_baselines::lsh::qalsh::{Qalsh, QalshParams};
use hd_baselines::lsh::srs::{Srs, SrsParams};
use hd_baselines::multicurves::{Multicurves, MulticurvesParams};
use hd_baselines::quantization::{Opq, OpqParams, Pq, PqParams};
use hd_core::dataset::{generate, Dataset, DatasetProfile};
use hd_core::ground_truth::ground_truth_knn;
use hd_core::metrics::score_workload;
use hd_core::topk::Neighbor;
use hd_index::{HdIndex, HdIndexParams, QueryParams};
use std::path::Path;
use std::time::Instant;

/// A named dataset + query set drawn from one of the paper's profiles.
pub struct Workload {
    pub name: String,
    pub profile: DatasetProfile,
    pub data: Dataset,
    pub queries: Dataset,
}

impl Workload {
    pub fn new(name: impl Into<String>, profile: DatasetProfile, n: usize, nq: usize, seed: u64) -> Self {
        let (data, queries) = generate(&profile, n, nq, seed);
        Self {
            name: name.into(),
            profile,
            data,
            queries,
        }
    }

    /// Exact ground truth at depth `k` (multi-threaded scan).
    pub fn truth(&self, k: usize) -> Vec<Vec<Neighbor>> {
        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
        ground_truth_knn(&self.data, &self.queries, k, threads)
    }
}

/// Uniform per-method measurements (§5's evaluation dimensions).
#[derive(Debug, Clone)]
pub struct MethodResult {
    pub method: &'static str,
    pub map: f64,
    pub ratio: f64,
    pub recall: f64,
    pub build_ms: f64,
    pub avg_query_ms: f64,
    pub index_disk_bytes: u64,
    /// Query-time resident memory of the index structure.
    pub query_mem_bytes: usize,
    /// Structural estimate of peak construction memory.
    pub build_mem_bytes: usize,
    pub avg_physical_reads: f64,
}

/// Either a result or the paper's CR/NP outcome with a reason.
pub enum MethodOutcome {
    Done(MethodResult),
    NotPossible(&'static str, String),
}

impl MethodOutcome {
    pub fn result(&self) -> Option<&MethodResult> {
        match self {
            MethodOutcome::Done(r) => Some(r),
            MethodOutcome::NotPossible(..) => None,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn score(
    method: &'static str,
    truth: &[Vec<Neighbor>],
    approx: Vec<Vec<Neighbor>>,
    build_ms: f64,
    query_ms_total: f64,
    index_disk_bytes: u64,
    query_mem_bytes: usize,
    build_mem_bytes: usize,
    physical_reads: u64,
) -> MethodResult {
    let s = score_workload(truth, &approx);
    let nq = truth.len().max(1) as f64;
    MethodResult {
        method,
        map: s.map,
        ratio: s.ratio,
        recall: s.recall,
        build_ms,
        avg_query_ms: query_ms_total / nq,
        index_disk_bytes,
        query_mem_bytes,
        build_mem_bytes,
        avg_physical_reads: physical_reads as f64 / nq,
    }
}

/// HD-Index with explicit construction/query parameters.
pub fn run_hd_index(
    w: &Workload,
    k: usize,
    truth: &[Vec<Neighbor>],
    dir: &Path,
    params: &HdIndexParams,
    qp: &QueryParams,
) -> MethodOutcome {
    let t0 = Instant::now();
    let index = match HdIndex::build(&w.data, params, dir.join("hdindex")) {
        Ok(i) => i,
        Err(e) => return MethodOutcome::NotPossible("HD-Index", e.to_string()),
    };
    let build_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let mut qp = *qp;
    qp.k = k;

    index.reset_io_stats();
    let t0 = Instant::now();
    let approx: Vec<Vec<Neighbor>> = w
        .queries
        .iter()
        .map(|q| index.knn(q, &qp).expect("query IO"))
        .collect();
    let query_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let io = index.io_stats();

    // Build memory: the per-tree sort buffer dominates (keys + values + Vec
    // headers) plus the n×m reference-distance table.
    let m = params.num_references;
    let eta = w.data.dim().div_ceil(params.tau);
    let entry = eta * params.hilbert_order as usize / 8 + 8 + 4 * m + 48;
    let build_mem = w.data.len() * (entry + 4 * m);

    MethodOutcome::Done(score(
        "HD-Index",
        truth,
        approx,
        build_ms,
        query_ms,
        index.disk_bytes(),
        index.memory_bytes(),
        build_mem,
        io.physical_reads,
    ))
}

/// HD-Index with the paper's recommended per-profile configuration.
pub fn run_hd_index_default(w: &Workload, k: usize, truth: &[Vec<Neighbor>], dir: &Path) -> MethodOutcome {
    let params = HdIndexParams::for_profile(&w.profile);
    let qp = QueryParams::triangular(4096.min(w.data.len()), 1024.min(w.data.len()), k);
    run_hd_index(w, k, truth, dir, &params, &qp)
}

pub fn run_idistance(w: &Workload, k: usize, truth: &[Vec<Neighbor>], dir: &Path) -> MethodOutcome {
    let t0 = Instant::now();
    let params = IDistanceParams {
        partitions: 64.min(w.data.len() / 10).max(1),
        ..Default::default()
    };
    let index = match IDistance::build(&w.data, params, dir.join("idistance")) {
        Ok(i) => i,
        Err(e) => return MethodOutcome::NotPossible("iDistance", e.to_string()),
    };
    let build_ms = t0.elapsed().as_secs_f64() * 1000.0;
    index.reset_io_stats();
    let t0 = Instant::now();
    let approx: Vec<Vec<Neighbor>> = w
        .queries
        .iter()
        .map(|q| index.knn(q, k).expect("query IO"))
        .collect();
    let query_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let io = index.io_stats();
    let build_mem = index.build_memory_bytes(w.data.len(), w.data.dim());
    MethodOutcome::Done(score(
        "iDistance",
        truth,
        approx,
        build_ms,
        query_ms,
        index.disk_bytes(),
        index.memory_bytes(),
        build_mem,
        io.physical_reads,
    ))
}

pub fn run_multicurves(w: &Workload, k: usize, truth: &[Vec<Neighbor>], dir: &Path) -> MethodOutcome {
    let params = MulticurvesParams {
        tau: 8.min(w.data.dim()),
        hilbert_order: w.profile.hilbert_order,
        domain: (w.profile.lo, w.profile.hi),
        alpha: 4096.min(w.data.len()),
        cache_pages: 0,
    };
    let t0 = Instant::now();
    let index = match Multicurves::build(&w.data, params, dir.join("multicurves")) {
        Ok(i) => i,
        Err(e) => return MethodOutcome::NotPossible("Multicurves", e.to_string()),
    };
    let build_ms = t0.elapsed().as_secs_f64() * 1000.0;
    index.reset_io_stats();
    let t0 = Instant::now();
    let approx: Vec<Vec<Neighbor>> = w
        .queries
        .iter()
        .map(|q| index.knn(q, k).expect("query IO"))
        .collect();
    let query_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let io = index.io_stats();
    let build_mem = w.data.len() * (w.data.dim() * 4 + 64);
    MethodOutcome::Done(score(
        "Multicurves",
        truth,
        approx,
        build_ms,
        query_ms,
        index.disk_bytes(),
        index.memory_bytes(),
        build_mem,
        io.physical_reads,
    ))
}

pub fn run_c2lsh(w: &Workload, k: usize, truth: &[Vec<Neighbor>], dir: &Path) -> MethodOutcome {
    let t0 = Instant::now();
    let index = match C2lsh::build(&w.data, C2lshParams::default(), dir.join("c2lsh")) {
        Ok(i) => i,
        Err(e) => return MethodOutcome::NotPossible("C2LSH", e.to_string()),
    };
    let build_ms = t0.elapsed().as_secs_f64() * 1000.0;
    index.reset_io_stats();
    let t0 = Instant::now();
    let approx: Vec<Vec<Neighbor>> = w
        .queries
        .iter()
        .map(|q| index.knn(q, k).expect("query IO"))
        .collect();
    let query_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let io = index.io_stats();
    let build_mem = index.memory_bytes() + w.data.memory_bytes();
    MethodOutcome::Done(score(
        "C2LSH",
        truth,
        approx,
        build_ms,
        query_ms,
        index.disk_bytes(),
        index.memory_bytes(),
        build_mem,
        io.physical_reads,
    ))
}

pub fn run_qalsh(w: &Workload, k: usize, truth: &[Vec<Neighbor>], dir: &Path) -> MethodOutcome {
    let t0 = Instant::now();
    let index = match Qalsh::build(&w.data, QalshParams::default(), dir.join("qalsh")) {
        Ok(i) => i,
        Err(e) => return MethodOutcome::NotPossible("QALSH", e.to_string()),
    };
    let build_ms = t0.elapsed().as_secs_f64() * 1000.0;
    index.reset_io_stats();
    let t0 = Instant::now();
    let approx: Vec<Vec<Neighbor>> = w
        .queries
        .iter()
        .map(|q| index.knn(q, k).expect("query IO"))
        .collect();
    let query_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let io = index.io_stats();
    let build_mem = w.data.len() * 24 + w.data.memory_bytes();
    MethodOutcome::Done(score(
        "QALSH",
        truth,
        approx,
        build_ms,
        query_ms,
        index.disk_bytes(),
        index.memory_bytes(),
        build_mem,
        io.physical_reads,
    ))
}

pub fn run_srs(w: &Workload, k: usize, truth: &[Vec<Neighbor>], dir: &Path) -> MethodOutcome {
    // The paper's t = 0.00242 assumes n ≥ 1M; floor the budget so small
    // workloads examine at least a few hundred points.
    let params = SrsParams {
        t: (0.00242f64).max(500.0 / w.data.len() as f64),
        ..Default::default()
    };
    let t0 = Instant::now();
    let index = match Srs::build(&w.data, params, dir.join("srs")) {
        Ok(i) => i,
        Err(e) => return MethodOutcome::NotPossible("SRS", e.to_string()),
    };
    let build_ms = t0.elapsed().as_secs_f64() * 1000.0;
    index.reset_io_stats();
    let t0 = Instant::now();
    let approx: Vec<Vec<Neighbor>> = w
        .queries
        .iter()
        .map(|q| index.knn(q, k).expect("query IO"))
        .collect();
    let query_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let io = index.io_stats();
    let build_mem = index.memory_bytes() + w.data.dim() * 4 * 6;
    MethodOutcome::Done(score(
        "SRS",
        truth,
        approx,
        build_ms,
        query_ms,
        index.disk_bytes(),
        index.memory_bytes(),
        build_mem,
        io.physical_reads,
    ))
}

pub fn run_opq(w: &Workload, k: usize, truth: &[Vec<Neighbor>]) -> MethodOutcome {
    // Rotation learning solves a ν×ν Procrustes per iteration (O(ν³) Jacobi
    // SVD); beyond ~300 dims that dominates everything else, so the harness
    // falls back to the identity rotation (plain PQ codebooks) there — the
    // same quality envelope the paper's OPQ shows on SUN/Enron.
    let opt_iters = if w.data.dim() > 300 { 0 } else { 6 };
    let params = OpqParams {
        pq: PqParams {
            m_subspaces: 8.min(w.data.dim()),
            k_sub: 256.min(w.data.len()),
            train_size: 10_000,
            kmeans_iters: 10,
            seed: 11,
        },
        opt_iters,
        opt_sample: 1500.min(w.data.len()),
    };
    let t0 = Instant::now();
    let index = Opq::build(&w.data, params);
    let build_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let t0 = Instant::now();
    // ADC shortlist + exact re-rank: the paper tunes OPQ's search so its MAP
    // matches HD-Index (§5 "Parameters").
    let approx: Vec<Vec<Neighbor>> = w
        .queries
        .iter()
        .map(|q| index.knn_rerank(&w.data, q, k, 20))
        .collect();
    let query_ms = t0.elapsed().as_secs_f64() * 1000.0;
    // In-memory method: data + codes resident at query time.
    let query_mem = index.memory_bytes() + w.data.memory_bytes();
    MethodOutcome::Done(score(
        "OPQ",
        truth,
        approx,
        build_ms,
        query_ms,
        0,
        query_mem,
        query_mem,
        0,
    ))
}

pub fn run_pq(w: &Workload, k: usize, truth: &[Vec<Neighbor>]) -> MethodOutcome {
    let params = PqParams {
        m_subspaces: 8.min(w.data.dim()),
        k_sub: 256.min(w.data.len()),
        train_size: 10_000,
        kmeans_iters: 10,
        seed: 11,
    };
    let t0 = Instant::now();
    let index = Pq::build(&w.data, params);
    let build_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let t0 = Instant::now();
    let approx: Vec<Vec<Neighbor>> = w
        .queries
        .iter()
        .map(|q| index.knn_rerank(&w.data, q, k, 20))
        .collect();
    let query_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let query_mem = index.memory_bytes() + w.data.memory_bytes();
    MethodOutcome::Done(score(
        "PQ",
        truth,
        approx,
        build_ms,
        query_ms,
        0,
        query_mem,
        query_mem,
        0,
    ))
}

pub fn run_hnsw(w: &Workload, k: usize, truth: &[Vec<Neighbor>]) -> MethodOutcome {
    let params = HnswParams {
        ef_search: (2 * k).max(96),
        ..Default::default()
    };
    let t0 = Instant::now();
    let index = Hnsw::build(&w.data, params);
    let build_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let t0 = Instant::now();
    let approx: Vec<Vec<Neighbor>> = w.queries.iter().map(|q| index.knn(q, k)).collect();
    let query_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let query_mem = index.memory_bytes();
    MethodOutcome::Done(score(
        "HNSW",
        truth,
        approx,
        build_ms,
        query_ms,
        0,
        query_mem,
        query_mem,
        0,
    ))
}

/// Runs the full method lineup of Fig. 8 on one workload. `include_exact`
/// adds iDistance (slow; it is only the exactness reference).
pub fn run_lineup(
    w: &Workload,
    k: usize,
    truth: &[Vec<Neighbor>],
    dir: &Path,
    include_exact: bool,
) -> Vec<MethodOutcome> {
    let mut out = Vec::new();
    out.push(run_hd_index_default(w, k, truth, dir));
    if include_exact {
        out.push(run_idistance(w, k, truth, dir));
    }
    out.push(run_multicurves(w, k, truth, dir));
    out.push(run_c2lsh(w, k, truth, dir));
    out.push(run_qalsh(w, k, truth, dir));
    out.push(run_srs(w, k, truth, dir));
    out.push(run_opq(w, k, truth));
    out.push(run_hnsw(w, k, truth));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hd_index_runner_produces_sane_numbers() {
        let w = Workload::new("t", DatasetProfile::SIFT, 1500, 10, 1);
        let truth = w.truth(10);
        let dir = std::env::temp_dir().join(format!("hd_bench_m_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let params = hd_index::HdIndexParams {
            tau: 4,
            num_references: 5,
            ..hd_index::HdIndexParams::for_profile(&DatasetProfile::SIFT)
        };
        let qp = QueryParams::triangular(256, 64, 10);
        match run_hd_index(&w, 10, &truth, &dir, &params, &qp) {
            MethodOutcome::Done(r) => {
                assert!(r.map > 0.3, "MAP {}", r.map);
                assert!(r.ratio >= 1.0);
                assert!(r.avg_query_ms > 0.0);
                assert!(r.index_disk_bytes > 0);
                assert!(r.avg_physical_reads > 0.0);
            }
            MethodOutcome::NotPossible(_, e) => panic!("should run: {e}"),
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn lineup_produces_all_methods() {
        let w = Workload::new("t", DatasetProfile::SIFT, 800, 5, 2);
        let truth = w.truth(5);
        let dir = std::env::temp_dir().join(format!("hd_bench_l_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = run_lineup(&w, 5, &truth, &dir, false);
        assert_eq!(out.len(), 7);
        for o in &out {
            if let MethodOutcome::Done(r) = o {
                assert!(r.map >= 0.0 && r.map <= 1.0, "{}: map {}", r.method, r.map);
            }
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
