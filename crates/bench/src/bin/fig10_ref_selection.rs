//! Figure 10 (Appendix A, §5.2.2): comparing reference-object selection
//! algorithms — Random, SSS, SSS-Dyn — on selection time and MAP@100.
//!
//! Paper shape: even Random lands within ~90% of SSS's MAP (the structure
//! itself, not the reference choice, carries the quality); SSS ≈ SSS-Dyn on
//! quality while being much faster to select; the gap shrinks as datasets
//! grow. SSS is the recommended default.

use hd_bench::methods::Workload;
use hd_bench::{table, BenchConfig, MethodOutcome};
use hd_core::dataset::DatasetProfile;
use hd_index::{HdIndexParams, QueryParams, RefSelection};
use std::time::Instant;

fn main() {
    let cfg = BenchConfig::from_args();
    let k = 100;
    let widths = [10usize, 10, 14, 10];

    for (name, profile, n, nq) in [
        ("Audio", DatasetProfile::AUDIO, 20_000, 50),
        ("SUN", DatasetProfile::SUN, 8_000, 30),
        ("SIFT100K", DatasetProfile::SIFT, 100_000, 50),
    ] {
        let w = Workload::with_metric(name, profile, cfg.n(n), cfg.nq(nq).min(100), cfg.seed, cfg.metric);
        let truth = w.truth(k);
        table::header(
            &format!("Fig. 10 [{name}]: reference-selection algorithms"),
            &["dataset", "method", "select time", "MAP@100"],
            &widths,
        );
        for (label, sel) in [
            ("Random", RefSelection::Random),
            ("SSS", RefSelection::Sss { f: 0.3 }),
            ("SSS-Dyn", RefSelection::SssDyn { f: 0.3, pairs: 100 }),
        ] {
            // Time the selection step alone (what Fig. 10a plots).
            let t0 = Instant::now();
            let _refs = hd_index::reference::select(&w.data, 10, sel, cfg.seed);
            let select_ms = t0.elapsed().as_secs_f64() * 1000.0;

            let dir = cfg.scratch(&format!("fig10_{name}_{label}"));
            let params = HdIndexParams {
                ref_selection: sel,
                ..HdIndexParams::for_profile(&w.profile)
            };
            let qp = QueryParams::triangular(4096.min(w.data.len()), 1024.min(w.data.len()), k);
            let map = match hd_bench::sweep::run_hd_variant(&w, k, &truth, &dir, &params, &qp) {
                MethodOutcome::Done(r) => table::f3(r.map),
                MethodOutcome::NotPossible(_, why) => why,
            };
            std::fs::remove_dir_all(dir).ok();
            table::row(
                &[name.into(), label.into(), table::ms(select_ms), map],
                &widths,
            );
        }
    }
    println!("\nPaper shape: Random within ~90% of SSS on MAP; SSS ≈ SSS-Dyn but faster;");
    println!("differences shrink with dataset size. Recommended: SSS.");
}
