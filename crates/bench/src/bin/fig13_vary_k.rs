//! Figure 13 (Appendix C, §5.2.7): MAP@k and query time as k varies over
//! {1, 5, 10, 50, 100}.
//!
//! Paper shape: HD-Index and Multicurves hold near-constant query time and
//! MAP across k (they always fetch α ≫ k candidates and refine); the LSH
//! family's time grows with k and its MAP moves erratically; iDistance is
//! exact at every k but slowest.

use hd_bench::methods::{run_methods, Workload};
use hd_bench::{table, BenchConfig, MethodOutcome};
use hd_core::dataset::DatasetProfile;

fn main() {
    let cfg = BenchConfig::from_args();
    let widths = [10usize, 12, 5, 8, 12];

    for (name, profile, n, nq, exact) in [
        ("SIFT10K", DatasetProfile::SIFT, 10_000, 50, true),
        ("Audio", DatasetProfile::AUDIO, 20_000, 50, true),
        ("SIFT100K", DatasetProfile::SIFT, 100_000, 30, false),
    ] {
        let w = Workload::with_metric(name, profile, cfg.n(n), cfg.nq(nq).min(100), cfg.seed, cfg.metric);
        table::header(
            &format!("Fig. 13 [{name}]: MAP@k and query time vs k"),
            &["dataset", "method", "k", "MAP@k", "query"],
            &widths,
        );
        for k in [1usize, 5, 10, 50, 100] {
            let truth = w.truth(k);
            let dir = cfg.scratch(&format!("fig13_{name}_{k}"));
            let names: Vec<&str> = match &cfg.methods {
                Some(m) => m.iter().map(|s| s.as_str()).collect(),
                None => {
                    let mut names = vec!["hd-index", "multicurves", "c2lsh", "qalsh", "srs"];
                    if exact {
                        names.push("idistance");
                    }
                    names
                }
            };
            for outcome in run_methods(&names, &w, k, &truth, &dir) {
                match outcome {
                    MethodOutcome::Done(r) => table::row(
                        &[
                            name.into(),
                            r.method.into(),
                            k.to_string(),
                            table::f3(r.map),
                            table::ms(r.avg_query_ms),
                        ],
                        &widths,
                    ),
                    MethodOutcome::NotPossible(m, _) => table::row(
                        &[name.into(), m.into(), k.to_string(), "NP".into(), "—".into()],
                        &widths,
                    ),
                }
            }
            std::fs::remove_dir_all(dir).ok();
        }
    }
    println!("\nPaper shape: HD-Index/Multicurves flat in k (α ≫ k); LSH times grow with k.");
}
