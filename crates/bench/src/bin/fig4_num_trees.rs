//! Figure 4(e–h): effect of the number of RDB-trees τ ∈ {2, 4, 8, 16, 32}
//! on query time, index size, MAP@10 and ratio@10.
//!
//! Paper shape: time and index size grow linearly with τ; quality saturates
//! at τ = 8 for ≤200-dimensional data, while very high-dimensional data
//! (SUN, 512-d) keeps improving up to τ = 16 (§5.2.4).

use hd_bench::methods::Workload;
use hd_bench::{table, BenchConfig, MethodOutcome};
use hd_core::dataset::DatasetProfile;
use hd_index::{HdIndexParams, QueryParams};

fn main() {
    let cfg = BenchConfig::from_args();
    let k = 10;
    let widths = [10usize, 4, 12, 12, 8, 8];

    for (name, profile, n, nq) in [
        ("SIFT10K", DatasetProfile::SIFT, 10_000, 100),
        ("Audio", DatasetProfile::AUDIO, 20_000, 100),
        ("SUN", DatasetProfile::SUN, 8_000, 50),
    ] {
        let w = Workload::with_metric(name, profile, cfg.n(n), cfg.nq(nq).min(200), cfg.seed, cfg.metric);
        let truth = w.truth(k);
        table::header(
            &format!("Fig. 4(e-h) [{name}]: varying number of RDB-trees τ"),
            &["dataset", "τ", "query", "index", "MAP@10", "ratio"],
            &widths,
        );
        for tau in [2usize, 4, 8, 16, 32] {
            // Hilbert curves support at most 64 dims; skip configurations
            // where η = ν/τ exceeds that (the paper's SUN runs also start
            // at larger τ for this reason).
            if w.data.dim().div_ceil(tau) > 64 {
                table::row(
                    &[
                        name.into(),
                        tau.to_string(),
                        "η>64".into(),
                        "(skipped)".into(),
                        "".into(),
                        "".into(),
                    ],
                    &widths,
                );
                continue;
            }
            let dir = cfg.scratch(&format!("fig4t_{name}_{tau}"));
            let params = HdIndexParams {
                tau,
                ..HdIndexParams::for_profile(&w.profile)
            };
            let qp = QueryParams::triangular(4096.min(w.data.len()), 1024.min(w.data.len()), k);
            match hd_bench::sweep::run_hd_variant(&w, k, &truth, &dir, &params, &qp) {
                MethodOutcome::Done(r) => table::row(
                    &[
                        name.into(),
                        tau.to_string(),
                        table::ms(r.avg_query_ms),
                        hd_core::util::fmt_bytes(r.index_disk_bytes as usize),
                        table::f3(r.map),
                        table::f3(r.ratio),
                    ],
                    &widths,
                ),
                MethodOutcome::NotPossible(_, why) => table::row(
                    &[name.into(), tau.to_string(), why, "".into(), "".into(), "".into()],
                    &widths,
                ),
            }
            std::fs::remove_dir_all(dir).ok();
        }
    }
    println!("\nPaper shape: linear cost growth in τ; quality saturates at τ = 8 (16 for 512-d SUN).");
}
