//! Figure 1: MAP@10 vs. approximation ratio (k = 10) on SIFT10K and Audio.
//!
//! The paper's motivating observation: methods with *good* (close-to-1)
//! approximation ratios can have *terrible* MAP, and the two metrics can
//! even rank methods in opposite orders. Expect HD-Index (and iDistance,
//! exact) with MAP near 1, the LSH family with competitive ratios but far
//! lower MAP.

use hd_bench::methods::{run_lineup, Workload};
use hd_bench::{table, BenchConfig};
use hd_core::dataset::DatasetProfile;

fn main() {
    let cfg = BenchConfig::from_args();
    let k = 10;
    let widths = [12usize, 8, 8, 8];

    for (name, profile, n, nq) in [
        ("SIFT10K", DatasetProfile::SIFT, 10_000, 100),
        ("Audio", DatasetProfile::AUDIO, 20_000, 100),
    ] {
        let w = Workload::with_metric(name, profile, cfg.n(n), cfg.nq(nq).min(200), cfg.seed, cfg.metric);
        let truth = w.truth(k);
        let dir = cfg.scratch(&format!("fig1_{name}"));
        println!(
            "\nDataset {name}: n={} ν={} queries={}",
            w.data.len(),
            w.data.dim(),
            w.queries.len()
        );
        table::header(
            &format!("Fig. 1 ({name}): MAP@10 vs approximation ratio"),
            &["method", "MAP@10", "ratio", "recall"],
            &widths,
        );
        for outcome in run_lineup(&w, k, &truth, &dir, true, cfg.methods.as_deref()) {
            match outcome {
                hd_bench::MethodOutcome::Done(r) => table::row(
                    &[
                        r.method.into(),
                        table::f3(r.map),
                        table::f3(r.ratio),
                        table::f3(r.recall),
                    ],
                    &widths,
                ),
                hd_bench::MethodOutcome::NotPossible(m, why) => {
                    table::row(&[m.into(), "NP".into(), "NP".into(), why], &widths)
                }
            }
        }
        std::fs::remove_dir_all(dir).ok();
    }
    println!("\nPaper shape: good ratios (≤1.5) coexist with MAP ≤ 0.2 for the");
    println!("LSH family, while HD-Index holds MAP near the exact methods.");
}
