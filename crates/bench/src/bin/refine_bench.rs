//! Refinement micro-bench: the blocked, early-abandoning pipeline against
//! the per-id path (`get_into` + full `l2_sq`) that `HdIndex::refine` used
//! before. The blocked side is *the* production loop —
//! [`hd_index::score_candidates_blocked`], the same function `HdIndex`
//! refines with — so this gate cannot drift from the real hot path.
//!
//! The workload mirrors Algorithm 2 step (iv) at the paper's operating
//! point: SIFT-like descriptors (d = 128), κ deduped candidates per query
//! spread across the heap, caches off so every page request is a physical
//! read — the exact regime where refinement dominates query cost (§4.4.1).
//! Both paths must produce identical top-k answers; the blocked path must
//! not be slower, and the binary exits nonzero if it is (or if the bounded
//! kernel stops truly abandoning evaluations early), so CI (running at
//! `--scale 0.01`) gates the optimization against silent regression.

use hd_bench::BenchConfig;
use hd_core::dataset::{generate, DatasetProfile};
use hd_core::distance::l2_sq;
use hd_core::topk::{Neighbor, TopK};
use hd_index::score_candidates_blocked;
use hd_storage::VectorHeap;
use std::time::Instant;

/// The old refinement inner loop: one heap fetch + one full distance per id.
fn refine_per_id(heap: &VectorHeap, query: &[f32], ids: &[u64], k: usize) -> Vec<Neighbor> {
    let mut tk = TopK::new(k);
    let mut vbuf = Vec::with_capacity(heap.dim());
    for &id in ids {
        heap.get_into(id, &mut vbuf).expect("heap read");
        tk.push(Neighbor::new(id, l2_sq(query, &vbuf)));
    }
    tk.into_sorted()
}

/// The blocked pipeline, via the shared production loop. Returns the
/// answer plus (evals, abandoned).
fn refine_blocked(
    heap: &VectorHeap,
    query: &[f32],
    ids: &[u64],
    k: usize,
    arena: &mut Vec<f32>,
) -> (Vec<Neighbor>, usize, usize) {
    let mut tk = TopK::new(k);
    let (evals, abandoned) =
        score_candidates_blocked(heap, hd_core::metric::Metric::L2, query, ids, &mut tk, arena)
            .expect("heap block read");
    (tk.into_sorted(), evals, abandoned)
}

fn main() {
    let cfg = BenchConfig::from_args();
    let n = cfg.n(20_000);
    let k = 10usize;
    // κ per query: the paper's recommended operating point (α = 4096,
    // γ = 1024, τ = 8 → κ ∈ [γ, τ·γ]); ≥ 1000 at full scale.
    let kappa = (n / 5).clamp(50, 4096);
    let nq = cfg.nq(32).clamp(8, 64);
    let (data, queries) = generate(&DatasetProfile::SIFT, n, nq, cfg.seed);
    let scratch = cfg.scratch("refine_bench");

    // Caches off: the paper's measurement mode, and the default the index
    // queries under — every page request is a physical read.
    let mut heap = VectorHeap::create(scratch.join("vectors.heap"), data.dim(), 0).expect("heap");
    for p in data.iter() {
        heap.append(p).expect("append");
    }

    // Candidate sets: κ distinct sorted ids per query, uniformly random
    // over the heap the way a multi-tree candidate union is (heap placement
    // is dataset order, uncorrelated with Hilbert order).
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let cands: Vec<Vec<u64>> = (0..nq)
        .map(|qi| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ (qi as u64) << 8);
            let mut all: Vec<u64> = (0..n as u64).collect();
            all.shuffle(&mut rng);
            all.truncate(kappa);
            all.sort_unstable();
            all
        })
        .collect();

    // Correctness first: both paths must agree bit for bit.
    let mut arena = Vec::new();
    for (qi, q) in queries.iter().enumerate() {
        let a = refine_per_id(&heap, q, &cands[qi], k);
        let (b, _, _) = refine_blocked(&heap, q, &cands[qi], k, &mut arena);
        assert_eq!(a, b, "blocked refinement diverged on query {qi}");
    }

    // Enough repetitions to dwarf timer noise at tiny CI scales.
    let reps = (2_000_000 / (nq * kappa)).clamp(3, 200);

    heap.pool().reset_stats();
    let t0 = Instant::now();
    for _ in 0..reps {
        for (qi, q) in queries.iter().enumerate() {
            std::hint::black_box(refine_per_id(&heap, q, &cands[qi], k));
        }
    }
    let per_id_secs = t0.elapsed().as_secs_f64();
    let per_id_reads = heap.pool().stats().physical_reads;

    let (mut evals, mut abandoned) = (0usize, 0usize);
    heap.pool().reset_stats();
    let t0 = Instant::now();
    for _ in 0..reps {
        for (qi, q) in queries.iter().enumerate() {
            let (ans, e, a) = refine_blocked(&heap, q, &cands[qi], k, &mut arena);
            std::hint::black_box(ans);
            evals += e;
            abandoned += a;
        }
    }
    let blocked_secs = t0.elapsed().as_secs_f64();
    let blocked_reads = heap.pool().stats().physical_reads;

    let refinements = (reps * nq) as f64;
    let speedup = per_id_secs / blocked_secs;
    let abandon_rate = abandoned as f64 / evals as f64;
    println!(
        "refine_bench: n={n} d={} κ≈{kappa} k={k} ({nq} queries × {reps} reps)",
        data.dim()
    );
    println!(
        "  per-id path : {:>8.2} µs/refinement, {:>6.1} page reads/refinement",
        1e6 * per_id_secs / refinements,
        per_id_reads as f64 / refinements
    );
    println!(
        "  blocked path: {:>8.2} µs/refinement, {:>6.1} page reads/refinement, \
         {:.1}% evals abandoned early",
        1e6 * blocked_secs / refinements,
        blocked_reads as f64 / refinements,
        100.0 * abandon_rate
    );
    println!("  speedup: {speedup:.2}x");

    std::fs::remove_dir_all(scratch).ok();
    if abandon_rate <= 0.0 {
        eprintln!("FAIL: bounded kernel never abandoned an evaluation (κ ≫ k workload)");
        std::process::exit(1);
    }
    if speedup < 1.0 {
        eprintln!(
            "FAIL: blocked refinement ({blocked_secs:.3}s) slower than per-id \
             ({per_id_secs:.3}s) — the hot-path optimization regressed"
        );
        std::process::exit(1);
    }
}
