//! Table 5: HD-Index's query-time and MAP@100 gains over every other
//! method, per dataset. A gain of `2.0x` in time means the competitor takes
//! twice HD-Index's query time; `<1x` means the competitor is faster
//! (in-memory OPQ/HNSW, and everything on tiny datasets — exactly the
//! paper's pattern). CR/NP rows mirror the paper's crashed / not-possible
//! entries.

use hd_bench::methods::{run_lineup, Workload};
use hd_bench::{table, BenchConfig};
use hd_core::dataset::DatasetProfile;

fn main() {
    let cfg = BenchConfig::from_args();
    let k = 100;
    let widths = [10usize, 12, 12, 12, 10];

    for (name, profile, n, nq, exact) in [
        ("SIFT10K", DatasetProfile::SIFT, 10_000, 50, true),
        ("Audio", DatasetProfile::AUDIO, 20_000, 50, true),
        ("SUN", DatasetProfile::SUN, 8_000, 30, true),
        ("SIFT100K", DatasetProfile::SIFT, 100_000, 50, false),
        ("Yorck", DatasetProfile::YORCK, 50_000, 50, false),
        ("Enron", DatasetProfile::ENRON, 5_000, 20, false),
        ("Glove", DatasetProfile::GLOVE, 50_000, 50, false),
    ] {
        let w = Workload::with_metric(name, profile, cfg.n(n), cfg.nq(nq).min(100), cfg.seed, cfg.metric);
        let truth = w.truth(k);
        let dir = cfg.scratch(&format!("t5_{name}"));
        let outcomes = run_lineup(&w, k, &truth, &dir, exact, cfg.methods.as_deref());
        std::fs::remove_dir_all(&dir).ok();

        let Some(hd) = outcomes
            .iter()
            .filter_map(|o| o.result())
            .find(|r| r.method == "HD-Index")
            .cloned()
        else {
            // Table 5 is defined as gains *over HD-Index*; with a
            // --methods selection that omits it there is nothing to report.
            println!("\n[{name}] skipped: HD-Index not in the selected methods");
            continue;
        };

        table::header(
            &format!(
                "Table 5 [{name}]: HD-Index query {} | MAP@100 {}",
                table::ms(hd.avg_query_ms),
                table::f3(hd.map)
            ),
            &["dataset", "vs method", "time gain", "MAP gain", "their MAP"],
            &widths,
        );
        for o in &outcomes {
            match o {
                hd_bench::MethodOutcome::Done(r) if r.method != "HD-Index" => {
                    let tg = r.avg_query_ms / hd.avg_query_ms;
                    let mg = if r.map > 0.0 { hd.map / r.map } else { f64::INFINITY };
                    table::row(
                        &[
                            name.into(),
                            r.method.into(),
                            format!("{tg:.2}x"),
                            if mg.is_finite() { format!("{mg:.2}x") } else { "∞".into() },
                            table::f3(r.map),
                        ],
                        &widths,
                    );
                }
                hd_bench::MethodOutcome::NotPossible(m, _) => {
                    table::row(&[name.into(), (*m).into(), "NP".into(), "NP".into(), "—".into()], &widths);
                }
                _ => {}
            }
        }
    }
    println!("\nPaper shape: time gains < 1x on tiny data, crossing above 1x as n grows");
    println!("(disk methods); MAP gains ≫ 1x over the LSH family, ≈ 1x vs OPQ/HNSW.");
}
