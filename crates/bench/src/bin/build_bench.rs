//! build_bench: out-of-core index construction under a hard memory budget
//! (DESIGN.md §11).
//!
//! The corpus never exists in process memory: it is generated straight to a
//! flat `f32` file (same clustered distribution as `hd_core::generate`,
//! written chunk by chunk) and consumed through `RawF32Source`, so the
//! process high-water mark measures the *build pipeline*, not the workload.
//! Four sections:
//!
//! 1. **Budgeted build** — `HdIndex::build_from_source` under
//!    `--budget-mb` (default 64). Reports wall time, spill-run counts, the
//!    scratch-IO ledger, and the `VmHWM` delta, which must stay under
//!    `1.5 × budget + slack` (slack covers the buffer pools, merge
//!    cursors, and allocator overhead — itemized below). At ≥ 1M points the
//!    whole cap must also undercut a tenth of what the naive in-memory
//!    build would materialize (corpus + n×m reference table + sort vec).
//! 2. **Query stage** — QPS and mean latency over the freshly built index.
//! 3. **Equivalence** — over `min(n, 200k)` points, an unbounded and a
//!    budgeted build (shared references) must answer every query
//!    identically, id for id; MAP/ratio/recall come from streaming exact
//!    ground truth over the corpus file.
//! 4. **Telemetry** — with `--telemetry`, the three disjoint build spans
//!    (`build_refdist_nanos`, `build_sort_nanos`, `build_bulkload_nanos`;
//!    `build_merge_nanos` nests inside bulk-load) must attribute ≥ 80% of
//!    the measured build wall, or the process exits non-zero — the CI gate
//!    extending the query-stage coverage gate to construction.
//!
//! `--json PATH` writes the numbers for check-in (`BENCH_build_bench.json`).

use hd_bench::{table, BenchConfig};
use hd_core::dataset::{DatasetProfile, Dataset, RawF32Source, VectorSource};
use hd_core::metric::Metric;
use hd_core::metrics::score_workload;
use hd_core::topk::{Neighbor, TopK};
use hd_index::{BuildOpts, HdIndex, HdIndexParams, QueryParams};
use hd_storage::BuildBudget;
use rand::distributions::Distribution;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::time::Instant;

const BASE_N: usize = 10_000_000;
/// Corpus size of the equivalence section: big enough to force spills at
/// the default budget, small enough that the unbounded control build stays
/// seconds-fast.
const EQ_N: usize = 200_000;
/// Build-span coverage the telemetry gate requires.
const BUILD_COVERAGE_GATE: f64 = 0.80;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// `VmHWM` from `/proc/self/status` in bytes — the kernel's lifetime peak
/// resident set, monotone by definition, so each section snapshots it
/// *before* later sections can raise it. 0 when unavailable (non-Linux).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            if let Some(kb) = rest.split_whitespace().next().and_then(|v| v.parse::<u64>().ok()) {
                return kb * 1024;
            }
        }
    }
    0
}

/// Streams the clustered synthetic distribution of `hd_core::generate`
/// (90% Gaussian mixture, 10% uniform background) straight to a flat
/// little-endian `f32` file, then returns `nq` query points drawn from the
/// same stream. Memory held: one point plus the cluster centers.
fn write_corpus(
    path: &Path,
    profile: &DatasetProfile,
    n: usize,
    nq: usize,
    seed: u64,
) -> std::io::Result<Vec<Vec<f32>>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n_clusters = (n / 500).clamp(4, 64);
    let span = profile.hi - profile.lo;
    let sigma = span * 0.05;
    let mut centers = Vec::with_capacity(n_clusters);
    for _ in 0..n_clusters {
        let c: Vec<f32> =
            (0..profile.dim).map(|_| rng.gen_range(profile.lo..=profile.hi)).collect();
        centers.push(c);
    }
    let normal = rand::distributions::Uniform::new(-1.0f32, 1.0f32);
    let sample_point = |rng: &mut rand::rngs::StdRng| -> Vec<f32> {
        let mut p = Vec::with_capacity(profile.dim);
        if rng.gen_bool(0.9) {
            let c = &centers[rng.gen_range(0..n_clusters)];
            for &center in c.iter().take(profile.dim) {
                let g = normal.sample(rng) + normal.sample(rng) + normal.sample(rng);
                p.push((center + g * sigma).clamp(profile.lo, profile.hi));
            }
        } else {
            for _ in 0..profile.dim {
                p.push(rng.gen_range(profile.lo..=profile.hi));
            }
        }
        if profile.integral {
            for v in &mut p {
                *v = v.round();
            }
        }
        p
    };

    let mut w = BufWriter::with_capacity(1 << 20, std::fs::File::create(path)?);
    for _ in 0..n {
        for v in sample_point(&mut rng) {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok((0..nq).map(|_| sample_point(&mut rng)).collect())
}

/// Exact k-NN over the corpus *file*: one sequential pass, a `TopK` per
/// query, never more than one chunk of vectors in memory.
fn streaming_truth(
    src: &mut RawF32Source,
    queries: &[Vec<f32>],
    k: usize,
) -> std::io::Result<Vec<Vec<Neighbor>>> {
    let dim = src.dim();
    let metric = src.metric();
    let mut tops: Vec<TopK> = queries.iter().map(|_| TopK::new(k)).collect();
    src.reset()?;
    let mut buf = Vec::new();
    let mut base = 0u64;
    loop {
        let got = src.next_chunk(8192, &mut buf)?;
        if got == 0 {
            break;
        }
        for (i, row) in buf.chunks_exact(dim).enumerate() {
            let id = base + i as u64;
            for (q, top) in queries.iter().zip(tops.iter_mut()) {
                top.push(Neighbor::new(id, metric.dist(q, row)));
            }
        }
        base += got as u64;
    }
    Ok(tops.into_iter().map(|t| t.into_sorted()).collect())
}

/// Strided reference-selection sample, mirroring what
/// `HdIndex::build_from_source` does internally. Selecting *before* the
/// timed build keeps the measured wall aligned with the three instrumented
/// pipeline spans (selection has no span), and folds the sample's memory
/// into the pre-build baseline where it belongs.
fn select_refs(
    src: &mut RawF32Source,
    params: &HdIndexParams,
) -> std::io::Result<hd_index::ReferenceSet> {
    const SAMPLE_MAX: usize = 1 << 17;
    let dim = src.dim();
    let stride = src.len().div_ceil(SAMPLE_MAX).max(1);
    let mut sample = Dataset::new(dim).with_metric(src.metric());
    src.reset()?;
    let (mut buf, mut j) = (Vec::new(), 0usize);
    loop {
        let got = src.next_chunk(4096, &mut buf)?;
        if got == 0 {
            break;
        }
        for (i, v) in buf.chunks_exact(dim).enumerate() {
            if (j + i).is_multiple_of(stride) {
                sample.push(v);
            }
        }
        j += got;
    }
    src.reset()?;
    Ok(hd_index::reference::select(
        &sample,
        params.num_references,
        params.ref_selection,
        params.seed,
    ))
}

fn build_span_nanos() -> (u64, u64, u64) {
    let reg = hd_telemetry::global();
    (
        reg.histogram("build_refdist_nanos", "").sum(),
        reg.histogram("build_sort_nanos", "").sum(),
        reg.histogram("build_bulkload_nanos", "").sum(),
    )
}

#[allow(clippy::too_many_lines)]
fn main() {
    let cfg = BenchConfig::from_args();
    hd_bench::telemetry_report::init(&cfg);
    let budget_mb: usize = flag_value("--budget-mb").and_then(|v| v.parse().ok()).unwrap_or(64);
    let budget = budget_mb << 20;
    let json_path = flag_value("--json").map(PathBuf::from);

    let profile = DatasetProfile::SIFT;
    let n = cfg.n(BASE_N);
    let nq = cfg.nq(64).clamp(16, 128);
    let k = 10;
    let scratch = cfg.scratch("build_bench");
    let corpus = scratch.join("corpus.f32");

    println!(
        "build_bench: n = {n}, dim = {}, budget = {budget_mb} MiB, {nq} queries, k = {k}",
        profile.dim
    );
    let t0 = Instant::now();
    let queries = write_corpus(&corpus, &profile, n, nq, cfg.seed).expect("write corpus");
    println!(
        "corpus: {:.2} GB streamed to {} in {:.1}s",
        (n * profile.dim * 4) as f64 / 1e9,
        corpus.display(),
        t0.elapsed().as_secs_f64()
    );

    // Buffer pools are cache, not pipeline working memory; still, a
    // memory-capped build should not smuggle an uncapped cache in through
    // the back door, so the per-pool page quota scales with the budget
    // (τ+1 pools sharing ~budget/4).
    let mut params = HdIndexParams::for_profile(&profile);
    let pool_pages = ((budget / 4) / 4096 / (params.tau + 1)).clamp(64, 1024);
    params.build_cache_pages = pool_pages;
    let pool_bytes = pool_pages * 4096 * (params.tau + 1);

    let mut src = RawF32Source::open(&corpus, profile.dim, Metric::L2).expect("open corpus");
    let refs = select_refs(&mut src, &params).expect("select references");
    let baseline_rss = peak_rss_bytes();

    // --- §1 Budgeted build -------------------------------------------------
    let spans_before = build_span_nanos();
    let t0 = Instant::now();
    let index = HdIndex::build_from_source(
        &mut src,
        &params,
        scratch.join("budgeted"),
        BuildOpts {
            references: Some(refs.clone()),
            cache_budget: None,
            build_budget: Some(BuildBudget::new(budget)),
        },
    )
    .expect("budgeted build");
    let build_secs = t0.elapsed().as_secs_f64();
    let peak_rss = peak_rss_bytes();
    let spans_after = build_span_nanos();
    let stats = index.build_stats();

    let rss_delta = peak_rss.saturating_sub(baseline_rss);
    // Slack components, itemized: the τ+1 buffer pools (page cache is
    // outside the pipeline budget but capped above), and a fixed 96 MiB
    // for allocator retention, merge cursors, thread stacks, and the
    // index's in-memory tombstone/metadata state.
    let allowance = (3 * budget) / 2 + pool_bytes + (96 << 20);
    let m = params.num_references;
    let eta = profile.dim.div_ceil(params.tau);
    let naive_entry = eta * params.hilbert_order as usize / 8 + 8 + 4 * m + 48;
    let naive_bytes = n * (profile.dim * 4 + m * 4 + naive_entry);

    let widths = [12usize, 12, 12, 12, 12, 12];
    table::header(
        "budgeted build",
        &["wall", "points/s", "spills", "spill MB", "peak ΔRSS", "disk MB"],
        &widths,
    );
    table::row(
        &[
            format!("{build_secs:.1}s"),
            format!("{:.0}", n as f64 / build_secs),
            stats.spilled_runs.to_string(),
            format!("{:.1}", stats.spilled_bytes as f64 / 1e6),
            format!("{:.1}MB", rss_delta as f64 / 1e6),
            format!("{:.1}", index.disk_bytes() as f64 / 1e6),
        ],
        &widths,
    );
    println!(
        "scratch IO: {} physical reads, {} physical writes (page units)",
        stats.scratch_io.physical_reads, stats.scratch_io.physical_writes
    );
    println!(
        "memory: peak ΔRSS {:.1} MB vs allowance {:.1} MB (1.5×budget + pools {:.1} MB + 96 MB); \
         naive in-memory build ≈ {:.1} MB",
        rss_delta as f64 / 1e6,
        allowance as f64 / 1e6,
        pool_bytes as f64 / 1e6,
        naive_bytes as f64 / 1e6,
    );
    if rss_delta > allowance as u64 {
        eprintln!(
            "FAIL: peak RSS delta {:.1} MB exceeds the {:.1} MB allowance",
            rss_delta as f64 / 1e6,
            allowance as f64 / 1e6
        );
        std::process::exit(1);
    }
    if n >= 1_000_000 && budget + allowance > naive_bytes / 10 {
        eprintln!(
            "FAIL: memory cap {:.1} MB is not under a tenth of the naive build's {:.1} MB",
            (budget + allowance) as f64 / 1e6,
            naive_bytes as f64 / 1e6
        );
        std::process::exit(1);
    }

    // Build-span coverage gate (§4): snapshot *now*, before the
    // equivalence builds add their own span samples.
    let attributed_nanos = (spans_after.0 - spans_before.0)
        + (spans_after.1 - spans_before.1)
        + (spans_after.2 - spans_before.2);
    let build_coverage = attributed_nanos as f64 / (build_secs * 1e9);
    if cfg.telemetry {
        println!(
            "[telemetry] build-span coverage: {} of build wall attributed \
             (refdist + sort + bulkload; gate ≥ {})",
            table::pct(build_coverage),
            table::pct(BUILD_COVERAGE_GATE),
        );
        if build_coverage < BUILD_COVERAGE_GATE {
            eprintln!("[telemetry] FAIL: build spans below the coverage gate");
            std::process::exit(1);
        }
    }

    // --- §2 Query stage ----------------------------------------------------
    let qp = QueryParams::triangular(4096.min(n), 1024.min(n), k);
    let t0 = Instant::now();
    let mut approx: Vec<Vec<Neighbor>> = Vec::with_capacity(nq);
    for q in &queries {
        approx.push(index.knn(q, &qp).expect("query"));
    }
    let query_secs = t0.elapsed().as_secs_f64();
    let qps = nq as f64 / query_secs;
    println!(
        "queries: {qps:.1} QPS ({:.2} ms/query) at α = {}, γ = {}",
        1e3 * query_secs / nq as f64,
        qp.alpha,
        qp.gamma
    );
    drop(index);

    // --- §3 Equivalence + quality over min(n, 200k) ------------------------
    let eq_n = n.min(EQ_N);
    let eq_corpus = if eq_n == n {
        corpus.clone()
    } else {
        let path = scratch.join("corpus_eq.f32");
        let mut r = std::fs::File::open(&corpus).expect("reopen corpus");
        let mut w = std::fs::File::create(&path).expect("create eq corpus");
        std::io::copy(
            &mut std::io::Read::take(&mut r, (eq_n * profile.dim * 4) as u64),
            &mut w,
        )
        .expect("copy eq corpus");
        path
    };
    let mut eq_src = RawF32Source::open(&eq_corpus, profile.dim, Metric::L2).expect("eq corpus");
    let eq_refs = select_refs(&mut eq_src, &params).expect("eq references");
    let shared = |budget: Option<BuildBudget>| BuildOpts {
        references: Some(eq_refs.clone()),
        cache_budget: None,
        build_budget: budget,
    };
    let unbounded =
        HdIndex::build_from_source(&mut eq_src, &params, scratch.join("eq_unbounded"), shared(None))
            .expect("unbounded build");
    assert_eq!(unbounded.build_stats().spilled_runs, 0, "unbounded build must not spill");
    eq_src.reset().expect("rewind eq corpus");
    let budgeted = HdIndex::build_from_source(
        &mut eq_src,
        &params,
        scratch.join("eq_budgeted"),
        shared(Some(BuildBudget::new(budget.min(8 << 20)))),
    )
    .expect("eq budgeted build");

    let eq_qp = QueryParams::triangular(4096.min(eq_n), 1024.min(eq_n), k);
    let mut identical = true;
    let mut eq_answers: Vec<Vec<Neighbor>> = Vec::with_capacity(nq);
    for q in &queries {
        let a = unbounded.knn(q, &eq_qp).expect("unbounded query");
        let b = budgeted.knn(q, &eq_qp).expect("budgeted query");
        identical &= a == b;
        eq_answers.push(b);
    }
    assert!(
        identical,
        "budgeted build answered differently from the unbounded build (n = {eq_n})"
    );
    let truth = streaming_truth(&mut eq_src, &queries, k).expect("ground truth");
    let quality = score_workload(&truth, &eq_answers);
    println!(
        "equivalence @ {eq_n}: budgeted ≡ unbounded on all {nq} queries \
         ({} spill runs); MAP {:.3}, ratio {:.3}, recall {:.3}",
        budgeted.build_stats().spilled_runs,
        quality.map,
        quality.ratio,
        quality.recall
    );

    if let Some(path) = json_path {
        let mut j = String::from("{\n");
        let _ = writeln!(j, "  \"bench\": \"build_bench\",");
        let _ = writeln!(j, "  \"scale\": {},", cfg.scale);
        let _ = writeln!(j, "  \"seed\": {},", cfg.seed);
        let _ = writeln!(j, "  \"n\": {n},");
        let _ = writeln!(j, "  \"dim\": {},", profile.dim);
        let _ = writeln!(j, "  \"tau\": {},", params.tau);
        let _ = writeln!(j, "  \"num_references\": {m},");
        let _ = writeln!(j, "  \"budget_bytes\": {budget},");
        let _ = writeln!(j, "  \"build\": {{");
        let _ = writeln!(j, "    \"seconds\": {build_secs:.2},");
        let _ = writeln!(j, "    \"points_per_sec\": {:.0},", n as f64 / build_secs);
        let _ = writeln!(j, "    \"spilled_runs\": {},", stats.spilled_runs);
        let _ = writeln!(j, "    \"spilled_bytes\": {},", stats.spilled_bytes);
        let _ = writeln!(j, "    \"scratch_reads\": {},", stats.scratch_io.physical_reads);
        let _ = writeln!(j, "    \"scratch_writes\": {},", stats.scratch_io.physical_writes);
        let _ = writeln!(j, "    \"peak_rss_delta_bytes\": {rss_delta},");
        let _ = writeln!(j, "    \"rss_allowance_bytes\": {allowance},");
        let _ = writeln!(j, "    \"naive_build_bytes\": {naive_bytes},");
        let _ = writeln!(j, "    \"index_disk_bytes\": {},", disk_bytes_final(&scratch));
        let _ = writeln!(j, "    \"span_coverage\": {build_coverage:.3}");
        let _ = writeln!(j, "  }},");
        let _ = writeln!(j, "  \"queries\": {{ \"count\": {nq}, \"qps\": {qps:.2} }},");
        let _ = writeln!(
            j,
            "  \"equivalence\": {{ \"n\": {eq_n}, \"identical\": {identical}, \
             \"spilled_runs\": {}, \"map\": {:.4}, \"ratio\": {:.4}, \"recall\": {:.4} }}",
            budgeted.build_stats().spilled_runs,
            quality.map,
            quality.ratio,
            quality.recall
        );
        j.push_str("}\n");
        std::fs::write(&path, j).expect("write json");
        println!("\nwrote {}", path.display());
    }

    drop((unbounded, budgeted));
    std::fs::remove_dir_all(&scratch).ok();
    hd_bench::telemetry_report::report(&cfg);
}

/// Bytes of the budgeted index directory, read back from disk so the JSON
/// survives the `drop(index)` above.
fn disk_bytes_final(scratch: &Path) -> u64 {
    fn walk(dir: &Path, total: &mut u64) {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    walk(&p, total);
                } else if let Ok(md) = e.metadata() {
                    *total += md.len();
                }
            }
        }
    }
    let mut total = 0;
    walk(&scratch.join("budgeted"), &mut total);
    total
}
