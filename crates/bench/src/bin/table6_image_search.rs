//! Table 6 + §5.5 (Appendices D–E): end-to-end image search with Borda-count
//! aggregation, scoring every method by its top-k image overlap with the
//! linear-scan ground truth.
//!
//! Paper shape: HD-Index, QALSH, OPQ and HNSW overlap most with the ground
//! truth; C2LSH retrieves poorly; SRS is moderate. Small per-descriptor
//! errors vanish in aggregation — high single-probe MAP translates directly
//! into correct image retrieval.

use hd_app::image_search::{search_image, ImageCorpus};
use hd_baselines::hnsw::{Hnsw, HnswParams};
use hd_baselines::lsh::c2lsh::{C2lsh, C2lshParams};
use hd_baselines::lsh::qalsh::{Qalsh, QalshParams};
use hd_baselines::lsh::srs::{Srs, SrsParams};
use hd_baselines::multicurves::{Multicurves, MulticurvesParams};
use hd_baselines::quantization::{Opq, OpqParams, PqParams};
use hd_bench::{table, BenchConfig};
use hd_core::ground_truth::knn_exact;
use hd_index::{HdIndex, HdIndexParams, QueryParams};

fn main() {
    let cfg = BenchConfig::from_args();
    let n_images = ((300.0 * cfg.scale) as usize).max(40);
    let descs = 16;
    let dim = 64;
    let corpus = ImageCorpus::generate(n_images, descs, dim, -1.0, 1.0, cfg.seed);
    let k_desc = 20; // per-descriptor neighbors fed into Borda
    let k_img = 3; // paper shows top-3 images
    let n_queries = 20.min(n_images);

    println!(
        "Corpus: {} images × {} descriptors × {} dims = {} descriptors",
        n_images,
        descs,
        dim,
        corpus.descriptors.len()
    );

    // Ground truth pipeline: exact per-descriptor search + Borda.
    let queries: Vec<_> = (0..n_queries)
        .map(|img| (img, corpus.query_image(img, 0.05)))
        .collect();
    let gt: Vec<_> = queries
        .iter()
        .map(|(_, q)| search_image(&corpus, q, k_desc, |d, k| knn_exact(&corpus.descriptors, d, k)))
        .collect();

    let widths = [12usize, 12, 12];
    table::header(
        "Table 6 / §5.5: Borda-count image search vs linear-scan ground truth",
        &["method", "overlap@3", "self-hit@1"],
        &widths,
    );

    let report = |name: &str, results: Vec<hd_app::image_search::ImageSearchResult>| {
        let overlap: f64 = results
            .iter()
            .zip(&gt)
            .map(|(r, g)| r.overlap_at(g, k_img))
            .sum::<f64>()
            / results.len() as f64;
        // How often the distorted query image retrieves its own source at 1.
        let self_hit: f64 = results
            .iter()
            .zip(&queries)
            .filter(|(r, (img, _))| r.top_k(1).first() == Some(&(*img as u32)))
            .count() as f64
            / results.len() as f64;
        table::row(
            &[name.into(), table::f3(overlap), table::f3(self_hit)],
            &widths,
        );
    };

    // Linear scan (ground truth against itself — sanity row).
    report("Linear", gt.clone());

    // HD-Index.
    {
        let dir = cfg.scratch("t6_hd");
        let params = HdIndexParams {
            tau: 8,
            hilbert_order: 16,
            num_references: 10,
            domain: (-1.0, 1.0),
            ..HdIndexParams::for_profile(&hd_core::dataset::DatasetProfile::SIFT)
        };
        let index = HdIndex::build(&corpus.descriptors, &params, &dir).unwrap();
        let qp = QueryParams::triangular(
            1024.min(corpus.descriptors.len()),
            256.min(corpus.descriptors.len()),
            k_desc,
        );
        let results: Vec<_> = queries
            .iter()
            .map(|(_, q)| search_image(&corpus, q, k_desc, |d, k| {
                let mut qp = qp;
                qp.k = k;
                index.knn(d, &qp).unwrap()
            }))
            .collect();
        report("HD-Index", results);
        std::fs::remove_dir_all(dir).ok();
    }

    // Multicurves.
    {
        let dir = cfg.scratch("t6_mc");
        let params = MulticurvesParams {
            tau: 8,
            hilbert_order: 16,
            domain: (-1.0, 1.0),
            alpha: 1024.min(corpus.descriptors.len()),
            cache_pages: 0,
        };
        let index = Multicurves::build(&corpus.descriptors, params, &dir).unwrap();
        let results: Vec<_> = queries
            .iter()
            .map(|(_, q)| search_image(&corpus, q, k_desc, |d, k| index.knn(d, k).unwrap()))
            .collect();
        report("Multicurves", results);
        std::fs::remove_dir_all(dir).ok();
    }

    // C2LSH.
    {
        let dir = cfg.scratch("t6_c2");
        let index = C2lsh::build(&corpus.descriptors, C2lshParams::default(), &dir).unwrap();
        let results: Vec<_> = queries
            .iter()
            .map(|(_, q)| search_image(&corpus, q, k_desc, |d, k| index.knn(d, k).unwrap()))
            .collect();
        report("C2LSH", results);
        std::fs::remove_dir_all(dir).ok();
    }

    // QALSH.
    {
        let dir = cfg.scratch("t6_qa");
        let index = Qalsh::build(
            &corpus.descriptors,
            QalshParams {
                max_m: 32,
                ..Default::default()
            },
            &dir,
        )
        .unwrap();
        let results: Vec<_> = queries
            .iter()
            .map(|(_, q)| search_image(&corpus, q, k_desc, |d, k| index.knn(d, k).unwrap()))
            .collect();
        report("QALSH", results);
        std::fs::remove_dir_all(dir).ok();
    }

    // SRS.
    {
        let dir = cfg.scratch("t6_srs");
        let index = Srs::build(
            &corpus.descriptors,
            SrsParams {
                t: 0.05,
                ..Default::default()
            },
            &dir,
        )
        .unwrap();
        let results: Vec<_> = queries
            .iter()
            .map(|(_, q)| search_image(&corpus, q, k_desc, |d, k| index.knn(d, k).unwrap()))
            .collect();
        report("SRS", results);
        std::fs::remove_dir_all(dir).ok();
    }

    // OPQ.
    {
        let index = Opq::build(
            &corpus.descriptors,
            OpqParams {
                pq: PqParams {
                    m_subspaces: 8,
                    k_sub: 64.min(corpus.descriptors.len()),
                    train_size: corpus.descriptors.len(),
                    kmeans_iters: 8,
                    seed: cfg.seed,
                },
                opt_iters: 4,
                opt_sample: 800.min(corpus.descriptors.len()),
            },
        );
        let results: Vec<_> = queries
            .iter()
            .map(|(_, q)| {
                search_image(&corpus, q, k_desc, |d, k| {
                    index.knn_rerank(&corpus.descriptors, d, k, 10)
                })
            })
            .collect();
        report("OPQ", results);
    }

    // HNSW.
    {
        let index = Hnsw::build(&corpus.descriptors, HnswParams::default());
        let results: Vec<_> = queries
            .iter()
            .map(|(_, q)| search_image(&corpus, q, k_desc, |d, k| index.knn(d, k)))
            .collect();
        report("HNSW", results);
    }

    println!("\nPaper shape: HD-Index/QALSH/OPQ/HNSW overlap most with the ground truth;");
    println!("C2LSH poorest; SRS moderate (Table 6 shows the same visual ranking).");
}
