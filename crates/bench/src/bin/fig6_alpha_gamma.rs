//! Figure 6 (§5.2.6): tuning the filter parameters α and γ.
//!
//! (a–f): α ∈ {2048, 4096, 8192, 16384} at α/γ ∈ {2, 4, 8} — query time
//! scales linearly with α, MAP@10 saturates at α = 4096 (8192 for large
//! datasets). (g, h): γ ∈ {128 … 4096} at α = 4096 — MAP saturates at
//! γ = 1024 (α/γ = 4 recommended).

use hd_bench::methods::Workload;
use hd_bench::{table, BenchConfig, MethodOutcome};
use hd_core::dataset::DatasetProfile;
use hd_index::{HdIndexParams, QueryParams};

fn main() {
    let cfg = BenchConfig::from_args();
    let k = 10;
    let widths = [10usize, 7, 6, 12, 8];

    let workloads: Vec<(&str, DatasetProfile, usize, usize)> = vec![
        ("SIFT10K", DatasetProfile::SIFT, 10_000, 100),
        ("Audio", DatasetProfile::AUDIO, 20_000, 100),
        ("SUN", DatasetProfile::SUN, 8_000, 50),
        ("SIFT100K", DatasetProfile::SIFT, 100_000, 50),
        ("Yorck", DatasetProfile::YORCK, 50_000, 50),
    ];

    for (name, profile, n, nq) in workloads {
        let w = Workload::with_metric(name, profile, cfg.n(n), cfg.nq(nq).min(100), cfg.seed, cfg.metric);
        let truth = w.truth(k);
        let params = HdIndexParams::for_profile(&w.profile);

        table::header(
            &format!("Fig. 6(a-f) [{name}]: varying α at α/γ ∈ {{2,4,8}}"),
            &["dataset", "α", "α/γ", "query", "MAP@10"],
            &widths,
        );
        for ratio in [2usize, 4, 8] {
            for alpha in [2048usize, 4096, 8192, 16384] {
                let alpha = alpha.min(w.data.len());
                let gamma = (alpha / ratio).max(k);
                let dir = cfg.scratch(&format!("fig6a_{name}_{alpha}_{ratio}"));
                let qp = QueryParams::triangular(alpha, gamma, k);
                if let MethodOutcome::Done(r) =
                    hd_bench::sweep::run_hd_variant(&w, k, &truth, &dir, &params, &qp)
                {
                    table::row(
                        &[
                            name.into(),
                            alpha.to_string(),
                            ratio.to_string(),
                            table::ms(r.avg_query_ms),
                            table::f3(r.map),
                        ],
                        &widths,
                    );
                }
                std::fs::remove_dir_all(dir).ok();
            }
        }

        table::header(
            &format!("Fig. 6(g,h) [{name}]: varying γ at α = 4096"),
            &["dataset", "γ", "", "query", "MAP@10"],
            &widths,
        );
        let alpha = 4096.min(w.data.len());
        for gamma in [128usize, 256, 512, 1024, 2048, 4096] {
            let gamma = gamma.min(alpha);
            let dir = cfg.scratch(&format!("fig6g_{name}_{gamma}"));
            let qp = QueryParams::triangular(alpha, gamma, k);
            if let MethodOutcome::Done(r) =
                hd_bench::sweep::run_hd_variant(&w, k, &truth, &dir, &params, &qp)
            {
                table::row(
                    &[
                        name.into(),
                        gamma.to_string(),
                        "".into(),
                        table::ms(r.avg_query_ms),
                        table::f3(r.map),
                    ],
                    &widths,
                );
            }
            std::fs::remove_dir_all(dir).ok();
        }
    }
    println!("\nPaper shape: time linear in α and γ; MAP saturates at α = 4096 (8192 for");
    println!("the larger sets) and γ = 1024, giving the recommended α/γ = 4.");
}
