//! Figure 9: qualitative classification of methods into the
//! Quality / Memory-footprint / Efficiency (Q/M/E) triangle, derived from a
//! measured run rather than asserted.
//!
//! Thresholds (scale-sensitive; §5.6 defines footprint as *external memory
//! storing the index plus main memory while querying*):
//! **Q** — MAP within 60% of the best approximate MAP; **M** — total
//! footprint (index on disk + query-resident RAM) at most 4× the raw data;
//! **E** — query time within 25× of the fastest (in-memory methods enjoy
//! what §5.4.2 calls an "unfair advantage", so the envelope is generous).
//!
//! Paper shape (large-data regime): HD-Index = QME; OPQ/HNSW/Multicurves
//! fail M; C2LSH/SRS fail Q as n grows; QALSH is quality-limited at our
//! capped hash-function budget (the paper's QALSH = QM).

use hd_bench::methods::{run_lineup, Workload};
use hd_bench::{table, BenchConfig};
use hd_core::dataset::DatasetProfile;

fn main() {
    let cfg = BenchConfig::from_args();
    let k = 100;
    let w = Workload::with_metric("SIFT", DatasetProfile::SIFT, cfg.n(100_000), cfg.nq(40).min(100), cfg.seed, cfg.metric);
    let raw_bytes = w.data.len() * w.data.dim() * 4;
    let truth = w.truth(k);
    let dir = cfg.scratch("fig9");
    let outcomes = run_lineup(&w, k, &truth, &dir, false, cfg.methods.as_deref());
    std::fs::remove_dir_all(&dir).ok();

    let results: Vec<&hd_bench::MethodResult> =
        outcomes.iter().filter_map(|o| o.result()).collect();
    let best_map = results.iter().map(|r| r.map).fold(0.0, f64::max);
    let best_time = results
        .iter()
        .map(|r| r.avg_query_ms)
        .fold(f64::INFINITY, f64::min);

    let widths = [12usize, 8, 12, 12, 12, 8];
    table::header(
        &format!(
            "Fig. 9: Q/M/E classification (n={}, raw data {})",
            w.data.len(),
            hd_core::util::fmt_bytes(raw_bytes)
        ),
        &["method", "MAP@100", "query", "footprint", "qry RAM", "class"],
        &widths,
    );
    for r in &results {
        let footprint = r.index_disk_bytes as usize + r.query_mem_bytes;
        let q = r.map >= 0.6 * best_map;
        let e = r.avg_query_ms <= 25.0 * best_time;
        let m = footprint <= 4 * raw_bytes;
        let class: String = [("Q", q), ("M", m), ("E", e)]
            .iter()
            .filter(|&&(_, on)| on)
            .map(|&(c, _)| c)
            .collect();
        table::row(
            &[
                r.method.into(),
                table::f3(r.map),
                table::ms(r.avg_query_ms),
                hd_core::util::fmt_bytes(footprint),
                hd_core::util::fmt_bytes(r.query_mem_bytes),
                if class.is_empty() { "—".into() } else { class },
            ],
            &widths,
        );
    }
    println!("\nPaper's Fig. 9 placement: HD-Index QME; Multicurves/HNSW/OPQ QE;");
    println!("QALSH QM; SRS M(E); C2LSH E. The Q and E splits sharpen as n grows.");
}
