//! Table 3: RDB-tree leaf orders Ω per dataset at page size B = 4 KB,
//! computed from Eq. (4), cross-checked against the leaf capacity of an
//! actually-built RDB-tree.

use hd_bench::{table, BenchConfig};
use hd_core::dataset::{generate, DatasetProfile};
use hd_index::config::rdb_leaf_order_eq4;
use hd_index::{HdIndex, HdIndexParams};

fn main() {
    let cfg = BenchConfig::from_args();
    let widths = [10usize, 6, 6, 10, 6, 10, 10, 10];
    table::header(
        "Table 3: RDB-tree leaf order (page size = 4 KB)",
        &["dataset", "ν", "ω", "η(=ν/τ)", "m", "Ω (Eq.4)", "Ω (paper)", "Ω (built)"],
        &widths,
    );

    // (profile, τ for Table 3's η column, paper Ω). Table 3 lists SUN with
    // η = 64 (τ = 8), although §5.2.4 recommends τ = 16 for querying.
    let rows: [(&DatasetProfile, usize, usize); 6] = [
        (&DatasetProfile::SIFT, 8, 63),
        (&DatasetProfile::YORCK, 8, 36),
        (&DatasetProfile::SUN, 8, 13),
        (&DatasetProfile::AUDIO, 8, 28),
        (&DatasetProfile::ENRON, 37, 18),
        (&DatasetProfile::GLOVE, 10, 40),
    ];

    for (p, tau, paper_omega) in rows {
        let eta = p.dim / tau;
        let m = 10;
        let eq4 = rdb_leaf_order_eq4(eta, p.hilbert_order, m, 4096);

        // Build a miniature index with exactly these parameters and read the
        // real leaf capacity back from the tree.
        let n = ((500.0 * cfg.scale) as usize).max(100);
        let (data, _) = generate(p, n, 1, cfg.seed);
        let params = HdIndexParams {
            tau,
            hilbert_order: p.hilbert_order,
            num_references: m,
            domain: (p.lo, p.hi),
            ..HdIndexParams::for_profile(p)
        };
        let dir = cfg.scratch(&format!("table3_{}", p.name));
        let built = match HdIndex::build(&data, &params, &dir) {
            Ok(idx) => idx.leaf_order(0).to_string(),
            Err(e) => format!("err: {e}"),
        };
        std::fs::remove_dir_all(&dir).ok();

        table::row(
            &[
                p.name.into(),
                p.dim.to_string(),
                p.hilbert_order.to_string(),
                eta.to_string(),
                m.to_string(),
                eq4.to_string(),
                paper_omega.to_string(),
                built,
            ],
            &widths,
        );
    }
    println!(
        "\nNote: Enron and Glove rows of the paper's Table 3 (Ω = 18, 40) do not\n\
         follow Eq. (4) with the row's own parameters (the formula gives 33, 46);\n\
         all other rows match exactly. Our built trees differ by ≤1 entry because\n\
         the on-page layout spends 2 extra header bytes and stores the object id\n\
         inside the B+-tree key."
    );
}
