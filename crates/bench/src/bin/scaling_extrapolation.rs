//! §5.4.4 (billion-scale feasibility): HD-Index is the only method that ran
//! on SIFT1B — ~10 days to build, 1.2 TB of index, 4.8 s/query at 30 MB RAM.
//!
//! We cannot host a billion points on a laptop, so this experiment measures
//! HD-Index at a geometric ladder of sizes, verifies the paper's linearity
//! claims (§3.5: construction time and space are O(n·ν); §4.4: query cost is
//! O(τ(log n + α/Ω + γ)) — i.e. *nearly flat* in n), and extrapolates the
//! fitted per-point costs to 10⁹ points for comparison with the reported
//! SIFT1B numbers.

use hd_bench::methods::Workload;
use hd_bench::{table, BenchConfig, MethodOutcome};
use hd_core::dataset::DatasetProfile;
use hd_core::util::fmt_bytes;
use hd_index::{HdIndexParams, QueryParams};

fn main() {
    let cfg = BenchConfig::from_args();
    let k = 100;
    let widths = [10usize, 12, 12, 12, 10, 10];
    let sizes: Vec<usize> = [12_500usize, 25_000, 50_000, 100_000]
        .iter()
        .map(|&n| cfg.n(n))
        .collect();

    table::header(
        "§5.4.4: HD-Index scaling ladder (SIFT profile)",
        &["n", "build", "index", "query", "MAP@100", "IO/qry"],
        &widths,
    );

    let mut rows: Vec<(f64, f64, f64, f64, f64)> = Vec::new(); // n, build_ms, bytes, query_ms, io
    for &n in &sizes {
        let w = Workload::with_metric("scal", DatasetProfile::SIFT, n, cfg.nq(30).min(50), cfg.seed, cfg.metric);
        let truth = w.truth(k);
        let dir = cfg.scratch(&format!("scaling_{n}"));
        let params = HdIndexParams::for_profile(&w.profile);
        let qp = QueryParams::triangular(8192.min(n), 2048.min(n), k);
        if let MethodOutcome::Done(r) = hd_bench::sweep::run_hd_variant(&w, k, &truth, &dir, &params, &qp) {
            table::row(
                &[
                    n.to_string(),
                    table::ms(r.build_ms),
                    fmt_bytes(r.index_disk_bytes as usize),
                    table::ms(r.avg_query_ms),
                    table::f3(r.map),
                    format!("{:.0}", r.avg_physical_reads),
                ],
                &widths,
            );
            rows.push((
                n as f64,
                r.build_ms,
                r.index_disk_bytes as f64,
                r.avg_query_ms,
                r.avg_physical_reads,
            ));
        }
        std::fs::remove_dir_all(dir).ok();
    }

    if rows.len() >= 2 {
        // Per-point slopes from the largest run (amortizing constants) and
        // growth ratios across the ladder.
        let last = rows.last().unwrap();
        let first = &rows[0];
        let build_per_point_ms = last.1 / last.0;
        let bytes_per_point = last.2 / last.0;
        let n_ratio = last.0 / first.0;
        let build_ratio = last.1 / first.1;
        let query_ratio = last.3 / first.3;

        println!("\nLinearity check over a {n_ratio:.0}x size ladder:");
        println!(
            "  build time grew {build_ratio:.1}x (O(n·ν) predicts {n_ratio:.0}x)  |  query time grew {query_ratio:.2}x (cost model predicts ~log-factor growth)"
        );

        let billion = 1e9;
        let proj_build_days = build_per_point_ms * billion / 1000.0 / 86_400.0;
        let proj_bytes = bytes_per_point * billion;
        println!("\nExtrapolation to n = 10⁹ (SIFT1B):");
        println!(
            "  projected build: {proj_build_days:.1} machine-days   (paper measured ~10 days on a 2013 i7 + HDD)"
        );
        println!(
            "  projected index: {}            (paper measured ~1.2 TB)",
            fmt_bytes(proj_bytes as usize)
        );
        println!(
            "  query time: ~flat in n — paper measured 4.8 s/query dominated by HDD seeks;\n\
             \x20 our per-query page reads ({:.0}) × ~10 ms/seek on an HDD ≈ the same order.",
            rows.last().unwrap().4
        );
    }
}
