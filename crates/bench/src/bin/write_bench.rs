//! write_bench: throughput of the durable write path.
//!
//! Three sections, all over one SIFT-profile corpus:
//!
//! 1. **Insert throughput vs. commit batch** — the WAL fsyncs on every
//!    commit, so `commit_every = 1` (the autocommit default) pays one
//!    fsync per insert while larger batches amortize it. The table shows
//!    where the knee sits on this machine's storage.
//! 2. **Delete throughput** — tombstone appends under per-op commit, the
//!    default serving configuration.
//! 3. **Compaction** — tombstone 30% of the corpus, rebuild over the
//!    survivors, and report wall time, reclaimed bytes, and the density
//!    column the serving tables share (`table::pct`).
//!
//! `--json PATH` additionally writes the numbers as a JSON object so runs
//! can be checked in and diffed (`BENCH_write_bench.json`).

use hd_bench::config::BenchConfig;
use hd_bench::table;
use hd_core::dataset::{generate, DatasetProfile};
use hd_index::{HdIndex, HdIndexParams};
use std::fmt::Write as _;
use std::time::Instant;

const BASE_N: usize = 20_000;
const COMMIT_BATCHES: [usize; 4] = [1, 8, 64, 512];

fn json_path_from_args() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

fn main() {
    let cfg = BenchConfig::from_args();
    hd_bench::telemetry_report::init(&cfg);
    let json_path = json_path_from_args();
    let profile = DatasetProfile::SIFT;
    let n = cfg.n(BASE_N);
    let inserts = (n / 4).max(100);
    let (data, extra) = generate(&profile, n, inserts, cfg.seed);
    let params = HdIndexParams {
        build_cache_pages: 256,
        query_cache_pages: 64,
        ..HdIndexParams::for_profile(&profile)
    };
    let scratch = cfg.scratch("write_bench");
    println!(
        "write_bench: n = {n}, dim = {}, {} inserts per run, {} deletes before compaction",
        profile.dim,
        inserts,
        (n * 3) / 10
    );

    // §1 Insert throughput vs. commit batch. A fresh index per batch size
    // so every run appends to an identical WAL and heap.
    let widths = [8usize, 10, 10, 10, 12];
    table::header(
        "insert throughput vs. WAL commit batch",
        &["batch", "ops/s", "ms/op", "fsyncs", "fsyncs/op"],
        &widths,
    );
    let mut insert_rows = Vec::new();
    for batch in COMMIT_BATCHES {
        let dir = scratch.join(format!("insert_b{batch}"));
        let mut index = HdIndex::build(&data, &params, &dir).expect("build");
        index.set_autocommit(batch == 1);
        let commits_before = index.write_stats().wal_commits;
        let t0 = Instant::now();
        for (i, v) in extra.iter().enumerate() {
            index.insert(v).expect("insert");
            if batch > 1 && (i + 1) % batch == 0 {
                index.commit_wal().expect("commit");
            }
        }
        index.commit_wal().expect("final commit");
        let secs = t0.elapsed().as_secs_f64();
        let fsyncs = index.write_stats().wal_commits - commits_before;
        let ops = inserts as f64 / secs;
        table::row(
            &[
                batch.to_string(),
                format!("{ops:.0}"),
                table::ms(secs * 1000.0 / inserts as f64),
                fsyncs.to_string(),
                format!("{:.3}", fsyncs as f64 / inserts as f64),
            ],
            &widths,
        );
        insert_rows.push((batch, ops, fsyncs));
        if batch != *COMMIT_BATCHES.last().unwrap() {
            drop(index);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    // §2 + §3 Delete throughput, then compaction over the tombstones. Runs
    // against the last insert index (n + inserts objects, committed WAL).
    let dir = scratch.join(format!("insert_b{}", COMMIT_BATCHES.last().unwrap()));
    let mut index = HdIndex::open(&dir, params.query_cache_pages).expect("reopen");
    index.save().expect("snapshot before the delete run");
    let total = index.next_id();
    let victims: Vec<u64> = (0..total)
        .filter(|id| id.wrapping_mul(2_654_435_761) % 10 < 3)
        .collect();
    let t0 = Instant::now();
    for &id in &victims {
        index.delete(id).expect("delete");
    }
    let del_secs = t0.elapsed().as_secs_f64();
    let del_ops = victims.len() as f64 / del_secs;
    let widths = [10usize, 10, 10];
    table::header("delete throughput (per-op commit)", &["deletes", "ops/s", "ms/op"], &widths);
    table::row(
        &[
            victims.len().to_string(),
            format!("{del_ops:.0}"),
            table::ms(del_secs * 1000.0 / victims.len() as f64),
        ],
        &widths,
    );

    let density = index.tombstone_density();
    let bytes_before = index.disk_bytes();
    let t0 = Instant::now();
    assert!(index.compact().expect("compact"), "30% tombstones must compact");
    let comp_secs = t0.elapsed().as_secs_f64();
    let bytes_after = index.disk_bytes();
    let survivors = index.live_len();
    let widths = [9usize, 10, 10, 12, 12, 12];
    table::header(
        "compaction (rebuild over survivors)",
        &["density", "wall", "vecs/s", "before", "after", "reclaimed"],
        &widths,
    );
    table::row(
        &[
            table::pct(density),
            table::ms(comp_secs * 1000.0),
            format!("{:.0}", survivors as f64 / comp_secs),
            format!("{:.1}MB", bytes_before as f64 / 1e6),
            format!("{:.1}MB", bytes_after as f64 / 1e6),
            table::pct(1.0 - bytes_after as f64 / bytes_before as f64),
        ],
        &widths,
    );

    if let Some(path) = json_path {
        let mut j = String::from("{\n");
        let _ = writeln!(j, "  \"bench\": \"write_bench\",");
        let _ = writeln!(j, "  \"scale\": {},", cfg.scale);
        let _ = writeln!(j, "  \"seed\": {},", cfg.seed);
        let _ = writeln!(j, "  \"n\": {n},");
        let _ = writeln!(j, "  \"dim\": {},", profile.dim);
        let _ = writeln!(j, "  \"inserts\": {inserts},");
        let _ = writeln!(j, "  \"insert_runs\": [");
        for (i, (batch, ops, fsyncs)) in insert_rows.iter().enumerate() {
            let comma = if i + 1 < insert_rows.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "    {{ \"commit_every\": {batch}, \"ops_per_sec\": {ops:.1}, \"fsyncs\": {fsyncs} }}{comma}"
            );
        }
        let _ = writeln!(j, "  ],");
        let _ = writeln!(
            j,
            "  \"delete\": {{ \"count\": {}, \"ops_per_sec\": {del_ops:.1} }},",
            victims.len()
        );
        let _ = writeln!(
            j,
            "  \"compaction\": {{ \"tombstone_density\": {density:.4}, \"seconds\": {comp_secs:.4}, \
             \"bytes_before\": {bytes_before}, \"bytes_after\": {bytes_after}, \"survivors\": {survivors} }}"
        );
        j.push_str("}\n");
        std::fs::write(&path, j).expect("write json");
        println!("\nwrote {}", path.display());
    }

    std::fs::remove_dir_all(&scratch).ok();
    hd_bench::telemetry_report::report(&cfg);
}
