//! Figure 7: MAP@10 and approximation ratio (k = 10) across methods on five
//! datasets — the full-width version of Fig. 1's argument.
//!
//! Paper shape: ratios bunch below ~1.5 for every method while MAP spreads
//! over an order of magnitude; the gap widens with dimensionality.

use hd_bench::methods::{run_lineup, Workload};
use hd_bench::{table, BenchConfig};
use hd_core::dataset::DatasetProfile;

fn main() {
    let cfg = BenchConfig::from_args();
    let k = 10;
    let widths = [10usize, 12, 8, 8];

    for (name, profile, n, nq, exact) in [
        ("SIFT10K", DatasetProfile::SIFT, 10_000, 100, true),
        ("Audio", DatasetProfile::AUDIO, 20_000, 100, true),
        ("SUN", DatasetProfile::SUN, 8_000, 50, true),
        ("SIFT100K", DatasetProfile::SIFT, 100_000, 50, false),
        ("Yorck", DatasetProfile::YORCK, 50_000, 50, false),
    ] {
        let w = Workload::with_metric(name, profile, cfg.n(n), cfg.nq(nq).min(100), cfg.seed, cfg.metric);
        let truth = w.truth(k);
        let dir = cfg.scratch(&format!("fig7_{name}"));
        table::header(
            &format!("Fig. 7 [{name}] (n={}, ν={}): MAP@10 and ratio", w.data.len(), w.data.dim()),
            &["dataset", "method", "MAP@10", "ratio"],
            &widths,
        );
        for outcome in run_lineup(&w, k, &truth, &dir, exact, cfg.methods.as_deref()) {
            match outcome {
                hd_bench::MethodOutcome::Done(r) => table::row(
                    &[name.into(), r.method.into(), table::f3(r.map), table::f3(r.ratio)],
                    &widths,
                ),
                hd_bench::MethodOutcome::NotPossible(m, _) => {
                    table::row(&[name.into(), m.into(), "NP".into(), "NP".into()], &widths)
                }
            }
        }
        std::fs::remove_dir_all(dir).ok();
    }
    println!("\nPaper shape: near-1 ratios for everything; MAP separates the methods,");
    println!("with HD-Index well ahead of the LSH family on every dataset.");
}
