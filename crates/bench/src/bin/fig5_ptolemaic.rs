//! Figures 5, 11, 12 (§5.2.5, Appendix B): triangular-only vs combined
//! triangular + Ptolemaic filtering, for α ∈ {2048, 4096, 8192} and
//! reduction configurations (α:β, β:γ) ∈ {(1,4), (2,2), (1,2)}.
//!
//! Paper shape: the combined filter wins slightly on MAP@10 (most visibly
//! at aggressive reductions) but costs ~1.5–2× the query time, with **zero**
//! additional disk accesses — which the IO column verifies.

use hd_bench::methods::Workload;
use hd_bench::{table, BenchConfig, MethodOutcome};
use hd_core::dataset::DatasetProfile;
use hd_index::{HdIndexParams, QueryParams};

fn main() {
    let cfg = BenchConfig::from_args();
    let k = 10;
    let widths = [10usize, 6, 10, 14, 10, 8, 10];

    for (name, profile, n, nq) in [
        ("SIFT10K", DatasetProfile::SIFT, 10_000, 100),
        ("Audio", DatasetProfile::AUDIO, 20_000, 100),
        ("SUN", DatasetProfile::SUN, 8_000, 50),
        ("SIFT100K", DatasetProfile::SIFT, 100_000, 50),
    ] {
        let w = Workload::with_metric(name, profile, cfg.n(n), cfg.nq(nq).min(100), cfg.seed, cfg.metric);
        let truth = w.truth(k);
        let params = HdIndexParams::for_profile(&w.profile);
        table::header(
            &format!("Fig. 5 [{name}]: filter pipelines (query time | MAP@10 | IO)"),
            &["dataset", "α", "(α:β,β:γ)", "filter", "query", "MAP@10", "IO/query"],
            &widths,
        );
        for alpha in [2048usize, 4096, 8192] {
            let alpha = alpha.min(w.data.len());
            for (r1, r2) in [(1usize, 4usize), (2, 2), (1, 2)] {
                let beta = alpha / r1;
                let gamma = beta / r2;
                let dir = cfg.scratch(&format!("fig5_{name}_{alpha}_{r1}{r2}"));
                // Triangular-only with the same final γ (paper: "β = γ").
                let tri = QueryParams::triangular(alpha, gamma, k);
                // Combined.
                let pto = QueryParams::ptolemaic(alpha, beta, gamma, k);
                for (label, qp) in [("Tri", tri), ("Tri+Pto", pto)] {
                    match hd_bench::sweep::run_hd_variant(&w, k, &truth, &dir, &params, &qp) {
                        MethodOutcome::Done(r) => table::row(
                            &[
                                name.into(),
                                alpha.to_string(),
                                format!("({r1},{r2})"),
                                label.into(),
                                table::ms(r.avg_query_ms),
                                table::f3(r.map),
                                format!("{:.0}", r.avg_physical_reads),
                            ],
                            &widths,
                        ),
                        MethodOutcome::NotPossible(_, why) => table::row(
                            &[name.into(), alpha.to_string(), why, "".into(), "".into(), "".into(), "".into()],
                            &widths,
                        ),
                    }
                }
                std::fs::remove_dir_all(dir).ok();
            }
        }
    }
    println!("\nPaper shape: Tri+Pto ≥ Tri on MAP (same disk IO), ~1.5-2x slower wall-clock.");
}
