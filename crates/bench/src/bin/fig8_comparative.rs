//! Figure 8 (a–o): the full comparative study at k = 100 — MAP@100, query
//! time, index size, indexing memory, querying memory — over the small
//! (SIFT10K/Audio/SUN), larger (SIFT100K/Yorck), and text (Enron/Glove)
//! dataset groups.
//!
//! Paper shape per panel: iDistance exact but slow and RAM-hungry to build;
//! OPQ/HNSW fastest but with the largest query-time memory; Multicurves the
//! largest index (NP on Enron); HD-Index modest on every resource with MAP
//! second only to the exact method.
//!
//! `--metric l2|l1|cosine|dot` reruns the whole study under another
//! distance function: workloads are stamped with the metric (cosine
//! unit-normalizes at creation), ground truth is metric-aware, rows label
//! the metric, and methods that cannot serve it show as NP with the reason.

use hd_bench::methods::{run_lineup, Workload};
use hd_bench::{table, BenchConfig};
use hd_core::dataset::DatasetProfile;
use hd_core::util::fmt_bytes;

/// (name, profile, n, queries, include-exact-iDistance).
type WorkloadSpec = (&'static str, DatasetProfile, usize, usize, bool);

fn main() {
    let cfg = BenchConfig::from_args();
    hd_bench::telemetry_report::init(&cfg);
    let k = 100;
    let widths = [10usize, 12, 8, 10, 10, 10, 10, 10];

    let groups: [(&str, Vec<WorkloadSpec>); 3] = [
        (
            "small (Fig. 8a-e)",
            vec![
                ("SIFT10K", DatasetProfile::SIFT, 10_000, 100, true),
                ("Audio", DatasetProfile::AUDIO, 20_000, 100, true),
                ("SUN", DatasetProfile::SUN, 8_000, 50, true),
            ],
        ),
        (
            "larger (Fig. 8f-j)",
            vec![
                ("SIFT100K", DatasetProfile::SIFT, 100_000, 50, false),
                ("Yorck", DatasetProfile::YORCK, 50_000, 50, false),
            ],
        ),
        (
            "text (Fig. 8k-o)",
            vec![
                ("Enron", DatasetProfile::ENRON, 5_000, 20, false),
                ("Glove", DatasetProfile::GLOVE, 50_000, 50, false),
            ],
        ),
    ];

    for (group, workloads) in groups {
        println!("\n######## Group: {group} ########");
        for (name, profile, n, nq, exact) in workloads {
            let w = Workload::with_metric(name, profile, cfg.n(n), cfg.nq(nq).min(100), cfg.seed, cfg.metric);
            let truth = w.truth(k);
            let dir = cfg.scratch(&format!("fig8_{name}"));
            // Rows label the metric explicitly for non-L2 runs; the default
            // L2 output stays byte-identical to the historical tables.
            let row_name = if cfg.metric == hd_core::metric::Metric::L2 {
                name.to_string()
            } else {
                format!("{name}/{}", cfg.metric)
            };
            table::header(
                &format!("Fig. 8 [{row_name}] n={} ν={} k=100", w.data.len(), w.data.dim()),
                &["dataset", "method", "MAP@100", "query", "index", "bld RAM", "qry RAM", "IO/qry"],
                &widths,
            );
            for outcome in run_lineup(&w, k, &truth, &dir, exact, cfg.methods.as_deref()) {
                match outcome {
                    hd_bench::MethodOutcome::Done(r) => table::row(
                        &[
                            row_name.clone(),
                            r.method.into(),
                            table::f3(r.map),
                            table::ms(r.avg_query_ms),
                            if r.index_disk_bytes == 0 {
                                "(mem)".into()
                            } else {
                                fmt_bytes(r.index_disk_bytes as usize)
                            },
                            fmt_bytes(r.build_mem_bytes),
                            fmt_bytes(r.query_mem_bytes),
                            format!("{:.0}", r.avg_physical_reads),
                        ],
                        &widths,
                    ),
                    hd_bench::MethodOutcome::NotPossible(m, why) => table::row(
                        &[
                            row_name.clone(),
                            m.into(),
                            "NP".into(),
                            "—".into(),
                            "—".into(),
                            "—".into(),
                            "—".into(),
                            why.chars().take(24).collect(),
                        ],
                        &widths,
                    ),
                }
            }
            std::fs::remove_dir_all(dir).ok();
        }
    }
    println!("\nPaper shape: OPQ/HNSW fastest with the largest query RAM; Multicurves the");
    println!("fattest index (NP on Enron); SRS the smallest; HD-Index balanced on all axes.");
    hd_bench::telemetry_report::report(&cfg);
}
