//! §5.2.1 ablation: does the dimension-partitioning scheme matter?
//!
//! The paper builds 100 indices with random partitionings and reports
//! MAP@10 mean ± std next to the contiguous default — e.g. SIFT10K
//! 0.974 ± 0.002 — concluding quality "does not depend significantly on the
//! choice of partitioning scheme". This binary reproduces that with a
//! configurable number of random rounds (default 10; `--scale 10` for the
//! paper's 100).

use hd_bench::methods::Workload;
use hd_bench::{table, BenchConfig, MethodOutcome};
use hd_core::dataset::DatasetProfile;
use hd_core::util::{mean, std_dev};
use hd_index::{HdIndexParams, QueryParams};

fn main() {
    let cfg = BenchConfig::from_args();
    let k = 10;
    let rounds = ((10.0 * cfg.scale) as usize).clamp(3, 100);
    let widths = [10usize, 14, 10, 10];

    for (name, profile, n, nq) in [
        ("SIFT10K", DatasetProfile::SIFT, 10_000, 50),
        ("Audio", DatasetProfile::AUDIO, 20_000, 50),
        ("SUN", DatasetProfile::SUN, 8_000, 30),
    ] {
        let w = Workload::with_metric(name, profile, cfg.n(n), cfg.nq(nq).min(100), cfg.seed, cfg.metric);
        let truth = w.truth(k);
        let base = HdIndexParams::for_profile(&w.profile);
        let qp = QueryParams::triangular(4096.min(w.data.len()), 1024.min(w.data.len()), k);

        let run = |params: &HdIndexParams, tag: &str| -> f64 {
            let dir = cfg.scratch(&format!("ablation_{name}_{tag}"));
            let map = match hd_bench::sweep::run_hd_variant(&w, k, &truth, &dir, params, &qp) {
                MethodOutcome::Done(r) => r.map,
                MethodOutcome::NotPossible(..) => f64::NAN,
            };
            std::fs::remove_dir_all(dir).ok();
            map
        };

        let contiguous = run(&base, "contig");
        let maps: Vec<f64> = (0..rounds)
            .map(|r| {
                let params = HdIndexParams {
                    random_partitioning: Some(cfg.seed ^ (r as u64 + 1)),
                    ..base.clone()
                };
                run(&params, &format!("rand{r}"))
            })
            .collect();

        table::header(
            &format!("§5.2.1 [{name}]: partitioning ablation ({rounds} random rounds)"),
            &["dataset", "scheme", "MAP@10", "±std"],
            &widths,
        );
        table::row(
            &[name.into(), "contiguous".into(), table::f3(contiguous), "—".into()],
            &widths,
        );
        table::row(
            &[
                name.into(),
                "random".into(),
                table::f3(mean(&maps)),
                table::f3(std_dev(&maps)),
            ],
            &widths,
        );
    }
    println!("\nPaper shape: random ≈ contiguous (e.g. SIFT10K 0.974 ± 0.002), so the");
    println!("simple contiguous scheme is justified.");
}
