//! Serving-engine throughput sweep: shards × worker threads × batch size,
//! against a sequential single-query baseline on the same workload.
//!
//! The sequential baseline is the repo's pre-engine serving story — one
//! `HdIndex`, one query at a time, per-query thread spawning not even
//! counted. The sweep shows where the engine's three levers pay: sharding
//! (smaller per-shard candidate unions), pooled threads (B·S tasks run
//! concurrently), and batching (scheduling + reference-distance
//! amortization). Run with `--scale 0.01` for a seconds-fast CI smoke.

use hd_bench::{table, BenchConfig};
use hd_core::dataset::{generate, DatasetProfile};
use hd_engine::{Engine, EngineParams};
use hd_index::{HdIndex, HdIndexParams, QueryParams};
use std::time::Instant;

fn main() {
    let cfg = BenchConfig::from_args();
    hd_bench::telemetry_report::init(&cfg);
    let profile = DatasetProfile::SIFT;
    let n = cfg.n(20_000);
    let nq = cfg.nq(256).clamp(16, 512);
    let (data, queries) = generate(&profile, n, nq, cfg.seed);
    let k = 10;
    let qp = QueryParams::triangular(1024.min(n), 256.min(n), k);
    let queries: Vec<&[f32]> = queries.iter().collect();
    let scratch = cfg.scratch("engine_throughput");

    // Serving configuration: caches on (this is a throughput experiment,
    // not the paper's cache-off IO accounting), one budget per engine.
    let index_params = HdIndexParams {
        query_cache_pages: 256,
        ..HdIndexParams::for_profile(&profile)
    };

    // --- Sequential baseline: one unsharded index, one query at a time.
    let baseline = HdIndex::build(&data, &index_params, scratch.join("baseline"))
        .expect("baseline build");
    let t0 = Instant::now();
    for q in &queries {
        baseline.knn(q, &qp).expect("baseline query");
    }
    let seq_secs = t0.elapsed().as_secs_f64();
    let seq_qps = nq as f64 / seq_secs;
    println!(
        "sequential baseline: {n} points, {nq} queries, {:.1} QPS ({:.2} ms/query)",
        seq_qps,
        1e3 * seq_secs / nq as f64
    );

    let hw = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let mut thread_counts = vec![1usize, 2, hw];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    let mut batch_sizes = vec![1usize, 16.min(nq), 64.min(nq)];
    batch_sizes.sort_unstable();
    batch_sizes.dedup();
    let widths = [6usize, 8, 6, 10, 9, 9, 9, 8];
    table::header(
        "engine_throughput: shards × threads × batch",
        &["shards", "threads", "batch", "QPS", "p50", "p95", "p99", "speedup"],
        &widths,
    );

    let mut best = (0.0f64, 0usize, 0usize, 0usize);
    for shards in [1usize, 2, 4] {
        if n < shards {
            continue;
        }
        let dir = scratch.join(format!("shards_{shards}"));
        let build_params = EngineParams {
            shards,
            threads: 0,
            cache_budget_pages: 4096,
            build_budget_bytes: 0,
            index: index_params.clone(),
            compaction_threshold: None,
        };
        // Build once per shard count; each serving configuration below
        // reopens the same files with its own pool and fresh metrics.
        drop(Engine::build(&data, &build_params, &dir).expect("engine build"));

        for &threads in &thread_counts {
            for &batch in &batch_sizes {
                let engine = Engine::open(
                    &dir,
                    &EngineParams {
                        threads,
                        ..build_params.clone()
                    },
                )
                .expect("engine open");
                let t0 = Instant::now();
                for chunk in queries.chunks(batch) {
                    engine
                        .search_batch(chunk.iter().copied(), &qp)
                        .expect("batched query");
                }
                let qps = nq as f64 / t0.elapsed().as_secs_f64();
                let stats = engine.serving_stats();
                if qps > best.0 {
                    best = (qps, shards, threads, batch);
                }
                table::row(
                    &[
                        shards.to_string(),
                        threads.to_string(),
                        batch.to_string(),
                        format!("{qps:.1}"),
                        table::ms(stats.p50_ms),
                        table::ms(stats.p95_ms),
                        table::ms(stats.p99_ms),
                        format!("{:.2}x", qps / seq_qps),
                    ],
                    &widths,
                );
            }
        }
    }

    let (best_qps, s, t, b) = best;
    println!(
        "\nbest: {best_qps:.1} QPS at shards={s} threads={t} batch={b} — {:.2}x the \
         sequential single-query baseline ({seq_qps:.1} QPS)",
        best_qps / seq_qps
    );
    if best_qps <= seq_qps {
        println!(
            "warning: batching did not beat sequential at this scale; \
             rerun with a larger --scale for a meaningful comparison"
        );
    }
    std::fs::remove_dir_all(scratch).ok();
    hd_bench::telemetry_report::report(&cfg);
}
