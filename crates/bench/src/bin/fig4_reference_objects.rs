//! Figure 4(a–d): effect of the number of reference objects
//! m ∈ {2, 5, 10, 15, 20} on query time, index size, MAP@10 and ratio@10.
//!
//! Paper shape: query time grows sub-linearly in m, index size linearly,
//! and both quality metrics saturate at m = 10 (the recommended default).

use hd_bench::methods::Workload;
use hd_bench::{table, BenchConfig, MethodOutcome};
use hd_core::dataset::DatasetProfile;
use hd_index::{HdIndexParams, QueryParams};

fn main() {
    let cfg = BenchConfig::from_args();
    let k = 10;
    let widths = [10usize, 4, 12, 12, 8, 8];

    for (name, profile, n, nq) in [
        ("SIFT10K", DatasetProfile::SIFT, 10_000, 100),
        ("Audio", DatasetProfile::AUDIO, 20_000, 100),
        ("SUN", DatasetProfile::SUN, 8_000, 50),
    ] {
        let w = Workload::with_metric(name, profile, cfg.n(n), cfg.nq(nq).min(200), cfg.seed, cfg.metric);
        let truth = w.truth(k);
        table::header(
            &format!("Fig. 4(a-d) [{name}]: varying number of reference objects m"),
            &["dataset", "m", "query", "index", "MAP@10", "ratio"],
            &widths,
        );
        for m in [2usize, 5, 10, 15, 20] {
            let dir = cfg.scratch(&format!("fig4m_{name}_{m}"));
            let params = HdIndexParams {
                num_references: m,
                ..HdIndexParams::for_profile(&w.profile)
            };
            let qp = QueryParams::triangular(4096.min(w.data.len()), 1024.min(w.data.len()), k);
            match hd_bench::sweep::run_hd_variant(&w, k, &truth, &dir, &params, &qp) {
                MethodOutcome::Done(r) => table::row(
                    &[
                        name.into(),
                        m.to_string(),
                        table::ms(r.avg_query_ms),
                        hd_core::util::fmt_bytes(r.index_disk_bytes as usize),
                        table::f3(r.map),
                        table::f3(r.ratio),
                    ],
                    &widths,
                ),
                MethodOutcome::NotPossible(_, why) => {
                    table::row(&[name.into(), m.to_string(), why, "".into(), "".into(), "".into()], &widths)
                }
            }
            std::fs::remove_dir_all(dir).ok();
        }
    }
    println!("\nPaper shape: MAP and ratio saturate at m = 10; index grows linearly in m.");
}
