//! serve_bench: served throughput of the HTTP front-end, with and without
//! cross-request coalescing, against the in-process engine baseline.
//!
//! Closed-loop load: C client threads each keep exactly one request in
//! flight (send → wait → send) for a fixed request count. Three phases over
//! one engine:
//!
//! 1. **direct** — clients call `AnnIndex::search` in-process; no HTTP.
//!    The ceiling, and the cost floor every served number is judged against.
//! 2. **passthrough** — real HTTP server, coalescing off: every request is
//!    its own engine dispatch.
//! 3. **coalesced** — coalescing on: concurrent requests drain into shared
//!    engine batches (`max_batch` 8, `max_wait` 500µs).
//!
//! The headline claim this bench gates in CI: under ≥ 8 concurrent
//! closed-loop clients, coalescing must **beat** passthrough on served QPS
//! — batching amortizes per-dispatch overhead (pool wake-ups, shard lock
//! traffic, fan-out latches) that passthrough pays per request. The two
//! served modes run as back-to-back pairs in alternating order and the
//! gate statistic is the mean of per-round QPS ratios, with adaptive round
//! counts at CI scale so a near-tie buys more evidence instead of flapping
//! the gate. The process exits nonzero if the claim fails. `--clients N`
//! overrides the client count, `--json PATH` writes the checked-in
//! artifact, `--probe` dumps per-phase telemetry deltas.

use std::io::{BufRead, BufReader, Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use hd_bench::config::BenchConfig;
use hd_bench::table;
use hd_core::api::{AnnIndex, SearchRequest};
use hd_core::dataset::{generate, DatasetProfile};
use hd_engine::{Engine, EngineParams};
use hd_index::HdIndexParams;
use hd_server::{Server, ServerConfig};
use std::fmt::Write as _;

const BASE_N: usize = 20_000;
/// Requests per client per phase (scaled, floor keeps statistics honest).
const BASE_REQUESTS: usize = 3_000;
const K: usize = 10;
/// Light point-lookup knobs: a serving front-end's value shows on cheap
/// queries, where per-dispatch fixed costs (pool wake-ups, reference
/// distances, lock traffic) are a large fraction of the request and
/// batching can actually amortize them.
const CANDIDATES: usize = 32;
const REFINE: usize = 16;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

struct Phase {
    name: &'static str,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// Engine dispatches and mean queries per dispatch (HTTP phases only).
    batches: u64,
    mean_batch: f64,
}

/// One request over an open connection; returns latency. Panics on any
/// non-200 — a load generator that silently counts errors measures nothing.
fn http_roundtrip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request: &[u8],
) -> f64 {
    let t0 = Instant::now();
    writer.write_all(request).expect("write request");
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    assert!(
        status_line.starts_with("HTTP/1.1 200"),
        "server answered {status_line:?}"
    );
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header line");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    t0.elapsed().as_secs_f64() * 1e3
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q) as usize).min(sorted.len() - 1);
    sorted[idx]
}

fn summarize(
    name: &'static str,
    mut latencies: Vec<f64>,
    wall_secs: f64,
    batches: u64,
    queries_batched: u64,
) -> Phase {
    latencies.sort_by(|a, b| a.total_cmp(b));
    Phase {
        name,
        qps: latencies.len() as f64 / wall_secs,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        batches,
        mean_batch: if batches > 0 {
            queries_batched as f64 / batches as f64
        } else {
            0.0
        },
    }
}

/// Phase 1: in-process closed loop, no HTTP.
fn direct_phase(engine: &Arc<Engine>, clients: usize, requests: usize, queries: &[Vec<f32>]) -> Phase {
    let req = SearchRequest::new(K).with_candidates(CANDIDATES).with_refine(REFINE);
    let barrier = Barrier::new(clients);
    let t0 = std::sync::OnceLock::new();
    let latencies: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let (engine, barrier, t0) = (engine, &barrier, &t0);
                s.spawn(move || {
                    barrier.wait();
                    let _ = t0.set(Instant::now());
                    let mut lat = Vec::with_capacity(requests);
                    for i in 0..requests {
                        let query = &queries[(c + i * clients) % queries.len()];
                        let s = Instant::now();
                        AnnIndex::search(engine.as_ref(), query, &req).expect("direct search");
                        lat.push(s.elapsed().as_secs_f64() * 1e3);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.get().expect("started").elapsed().as_secs_f64();
    summarize("direct", latencies.concat(), wall, 0, 0)
}

/// Phases 2 and 3: real TCP clients against a bound server.
fn served_phase(
    name: &'static str,
    engine: &Arc<Engine>,
    coalescing: bool,
    clients: usize,
    requests: usize,
    bodies: &[Vec<u8>],
) -> Phase {
    let config = ServerConfig {
        coalescing,
        max_connections: clients,
        max_batch: 8,
        max_wait_us: 500,
        save_on_shutdown: false, // phases share the engine; nothing to persist
        ..ServerConfig::default()
    };
    let server = Server::bind(Arc::clone(engine), config).expect("bind server");
    let addr: SocketAddr = server.addr();
    let batches_before = server.state().metrics.batches_total.get();
    let batched_before = server.state().metrics.batch_size.sum();

    let barrier = Barrier::new(clients);
    let t0 = std::sync::OnceLock::new();
    let latencies: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let (barrier, t0) = (&barrier, &t0);
                s.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut writer = stream;
                    // Warm up the connection (and the engine caches) off
                    // the clock.
                    http_roundtrip(&mut reader, &mut writer, &bodies[c % bodies.len()]);
                    barrier.wait();
                    let _ = t0.set(Instant::now());
                    let mut lat = Vec::with_capacity(requests);
                    for i in 0..requests {
                        let body = &bodies[(c + i * clients) % bodies.len()];
                        lat.push(http_roundtrip(&mut reader, &mut writer, body));
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.get().expect("started").elapsed().as_secs_f64();
    let batches = server.state().metrics.batches_total.get() - batches_before;
    let batched = server.state().metrics.batch_size.sum() - batched_before;
    server.shutdown().expect("shutdown");
    if std::env::args().any(|a| a == "--probe") {
        let reg = hd_telemetry::global();
        for m in [
            "engine_batch_nanos",
            "engine_fanout_nanos",
            "engine_merge_nanos",
            "engine_ref_dists_nanos",
            "hd_server_request_nanos",
        ] {
            let h = reg.histogram(m, "");
            eprintln!("probe {name} {m}: sum_ms={:.1} count={}", h.sum() as f64 / 1e6, h.count());
        }
        eprintln!("probe {name} wall_ms={:.1}", wall * 1e3);
    }
    summarize(name, latencies.concat(), wall, batches, batched)
}

fn main() {
    let cfg = BenchConfig::from_args();
    hd_bench::telemetry_report::init(&cfg);
    let json_path = flag_value("--json").map(std::path::PathBuf::from);
    let clients: usize = flag_value("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let n = cfg.n(BASE_N);
    let requests = ((BASE_REQUESTS as f64 * cfg.scale) as usize).max(100);

    let profile = DatasetProfile::SIFT;
    let (data, queries) = generate(&profile, n, 64, cfg.seed);
    let queries: Vec<Vec<f32>> = queries.iter().map(|q| q.to_vec()).collect();
    let scratch = cfg.scratch("serve_bench");
    let params = EngineParams {
        // 4 shards, not 2: the per-request fan-out cost passthrough pays
        // (S pool handoffs + a latch per query) is exactly what coalescing
        // amortizes, so the A/B contrast this bench gates on needs a
        // realistic shard count to be visible above scheduler noise.
        shards: 4,
        threads: 2,
        index: HdIndexParams {
            build_cache_pages: 256,
            query_cache_pages: 64,
            ..HdIndexParams::for_profile(&profile)
        },
        ..EngineParams::new(HdIndexParams::for_profile(&profile))
    };
    let engine = Arc::new(Engine::build(&data, &params, scratch.join("engine")).expect("build"));
    println!(
        "serve_bench: n = {n}, dim = {}, {clients} closed-loop clients × {requests} requests/phase, \
         k = {K}",
        profile.dim
    );

    // Pre-rendered request bytes so the load loop measures serving, not
    // client-side formatting.
    let bodies: Vec<Vec<u8>> = queries
        .iter()
        .map(|q| {
            let items: Vec<String> = q.iter().map(|x| format!("{x}")).collect();
            let body = format!(
                "{{\"vector\":[{}],\"k\":{K},\"candidates\":{CANDIDATES},\"refine\":{REFINE}}}",
                items.join(",")
            );
            format!(
                "POST /v1/query HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            )
            .into_bytes()
        })
        .collect();

    // The two served modes alternate in back-to-back pairs, and the gate
    // statistic is the mean of per-round QPS *ratios*: both halves of a
    // pair see the same transient machine conditions, so inter-round drift
    // (thermal, background load) cancels out of the ratio even when it
    // dominates the absolute numbers. Rounds are adaptive — the loop stops
    // as soon as the mean ratio is confidently away from 1.0 (|z| ≥ 1.5)
    // or a cap is hit, so a noisy run buys itself more evidence instead of
    // flapping a CI gate on a single near-tie.
    const MIN_ROUNDS: usize = 5;
    let max_rounds = if requests > 500 { MIN_ROUNDS } else { 31 };
    let direct = direct_phase(&engine, clients, requests, &queries);
    let mut passthrough_rounds = Vec::new();
    let mut coalesced_rounds = Vec::new();
    let mut ratios: Vec<f64> = Vec::new();
    let speedup = loop {
        // Alternate which mode goes first so within-pair warmup drift does
        // not systematically favor either side of the ratio.
        let (p, c) = if ratios.len().is_multiple_of(2) {
            let p = served_phase("passthrough", &engine, false, clients, requests, &bodies);
            let c = served_phase("coalesced", &engine, true, clients, requests, &bodies);
            (p, c)
        } else {
            let c = served_phase("coalesced", &engine, true, clients, requests, &bodies);
            let p = served_phase("passthrough", &engine, false, clients, requests, &bodies);
            (p, c)
        };
        ratios.push(c.qps / p.qps);
        passthrough_rounds.push(p);
        coalesced_rounds.push(c);
        let n = ratios.len() as f64;
        let mean = ratios.iter().sum::<f64>() / n;
        if ratios.len() >= MIN_ROUNDS {
            let var = ratios.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / (n - 1.0);
            let se = (var / n).sqrt();
            // Stop early only on a *conclusive* outcome (2 standard errors
            // from parity); an inconclusive run keeps buying rounds up to
            // the cap rather than flapping a CI gate on a near-tie. A real
            // regression still fails fast — confidently worse exits here
            // too once it has at least 9 rounds behind it.
            let conclusive_win = mean - 1.0 >= 2.0 * se;
            let conclusive_loss = 1.0 - mean >= 2.0 * se && ratios.len() >= 9;
            if ratios.len() >= max_rounds || conclusive_win || conclusive_loss {
                break mean;
            }
        }
    };
    let median = |mut rounds: Vec<Phase>| -> Phase {
        rounds.sort_by(|a, b| a.qps.total_cmp(&b.qps));
        rounds.remove(rounds.len() / 2)
    };
    let phases = [direct, median(passthrough_rounds), median(coalesced_rounds)];

    let widths = [13usize, 10, 10, 10, 9, 11];
    table::header(
        "served throughput, closed loop",
        &["phase", "qps", "p50", "p99", "batches", "mean batch"],
        &widths,
    );
    for p in &phases {
        table::row(
            &[
                p.name.to_string(),
                format!("{:.0}", p.qps),
                table::ms(p.p50_ms),
                table::ms(p.p99_ms),
                p.batches.to_string(),
                if p.batches > 0 {
                    format!("{:.2}", p.mean_batch)
                } else {
                    "-".to_string()
                },
            ],
            &widths,
        );
    }

    let (direct, passthrough, coalesced) = (&phases[0], &phases[1], &phases[2]);
    println!(
        "\nHTTP overhead: passthrough serves {:.0}% of direct QPS; coalescing recovers to {:.0}%",
        100.0 * passthrough.qps / direct.qps,
        100.0 * coalesced.qps / direct.qps,
    );
    let wins = speedup > 1.0;
    println!(
        "coalescing gate ({clients} clients): {} (mean paired speedup {:.3}x over {} rounds, \
         {:.0} vs {:.0} qps, mean batch {:.2})",
        if wins { "PASS" } else { "FAIL" },
        speedup,
        ratios.len(),
        coalesced.qps,
        passthrough.qps,
        coalesced.mean_batch,
    );

    if let Some(path) = json_path {
        let mut j = String::from("{\n");
        let _ = writeln!(j, "  \"bench\": \"serve_bench\",");
        let _ = writeln!(j, "  \"scale\": {},", cfg.scale);
        let _ = writeln!(j, "  \"seed\": {},", cfg.seed);
        let _ = writeln!(j, "  \"n\": {n},");
        let _ = writeln!(j, "  \"clients\": {clients},");
        let _ = writeln!(j, "  \"requests_per_client\": {requests},");
        let _ = writeln!(j, "  \"k\": {K},");
        let _ = writeln!(j, "  \"phases\": [");
        for (i, p) in phases.iter().enumerate() {
            let comma = if i + 1 < phases.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "    {{ \"phase\": \"{}\", \"qps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
                 \"batches\": {}, \"mean_batch\": {:.2} }}{comma}",
                p.name, p.qps, p.p50_ms, p.p99_ms, p.batches, p.mean_batch
            );
        }
        let _ = writeln!(j, "  ],");
        let _ = writeln!(j, "  \"paired_rounds\": {},", ratios.len());
        let _ = writeln!(j, "  \"coalescing_speedup\": {speedup:.3},");
        let _ = writeln!(j, "  \"coalescing_beats_passthrough\": {wins}");
        j.push_str("}\n");
        std::fs::write(&path, j).expect("write json");
        println!("wrote {}", path.display());
    }

    std::fs::remove_dir_all(&scratch).ok();
    hd_bench::telemetry_report::report(&cfg);
    if clients >= 8 && !wins {
        eprintln!(
            "serve_bench: coalescing must beat passthrough under {clients} concurrent clients"
        );
        std::process::exit(1);
    }
}
