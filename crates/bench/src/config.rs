//! Command-line configuration shared by all experiment binaries.

use hd_core::metric::Metric;

/// Scaling knobs parsed from `argv`: `--scale F` multiplies every dataset
/// size, `--queries N` overrides the query-set size, `--seed S` reseeds the
/// generators, `--methods a,b,c` restricts registry-driven binaries to the
/// named methods, `--metric l2|l1|cosine|dot` selects the distance function
/// on every workload-driven binary (methods — or filter variants — that
/// cannot serve it render as NP rows with the reason), `--telemetry`
/// enables the global telemetry layer and prints a per-stage breakdown plus
/// the Prometheus exposition at exit. Unknown flags are ignored so binaries
/// can add their own.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    pub scale: f64,
    pub queries: Option<usize>,
    pub seed: u64,
    /// Registry names selected with `--methods` (comma-separated), if any.
    pub methods: Option<Vec<String>>,
    /// Distance function selected with `--metric` (default L2).
    pub metric: Metric,
    /// Whether `--telemetry` was passed (spans + stage-breakdown report).
    pub telemetry: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            scale: 1.0,
            queries: None,
            seed: 42,
            methods: None,
            metric: Metric::L2,
            telemetry: false,
        }
    }
}

impl BenchConfig {
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_slice(&args)
    }

    pub fn from_slice(args: &[String]) -> Self {
        let mut cfg = Self::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        cfg.scale = v;
                        i += 1;
                    }
                }
                "--queries" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        cfg.queries = Some(v);
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        cfg.seed = v;
                        i += 1;
                    }
                }
                "--methods" => {
                    if let Some(v) = args.get(i + 1) {
                        cfg.methods = Some(
                            v.split(',')
                                .map(|m| m.trim().to_string())
                                .filter(|m| !m.is_empty())
                                .collect(),
                        );
                        i += 1;
                    }
                }
                "--metric" => {
                    if let Some(v) = args.get(i + 1) {
                        match Metric::parse(v) {
                            Some(m) => cfg.metric = m,
                            None => eprintln!(
                                "warning: unknown metric {v:?} (known: l2, l1, cosine, dot); \
                                 keeping {}",
                                cfg.metric
                            ),
                        }
                        i += 1;
                    }
                }
                "--telemetry" => cfg.telemetry = true,
                _ => {}
            }
            i += 1;
        }
        cfg
    }

    /// Applies the scale factor with a floor so indexes stay non-degenerate.
    pub fn n(&self, base: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(200)
    }

    /// Query-set size: explicit override, else scaled with a floor of 20.
    pub fn nq(&self, base: usize) -> usize {
        self.queries
            .unwrap_or(((base as f64 * self.scale) as usize).max(20))
    }

    /// A scratch directory for this experiment's index files.
    pub fn scratch(&self, experiment: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("hd_bench")
            .join(format!("{experiment}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags() {
        let cfg = BenchConfig::from_slice(&s(&["prog", "--scale", "0.5", "--seed", "7"]));
        assert_eq!(cfg.scale, 0.5);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.queries, None);
        assert_eq!(cfg.metric, Metric::L2, "L2 is the default metric");
    }

    #[test]
    fn parses_metric_flag() {
        let cfg = BenchConfig::from_slice(&s(&["prog", "--metric", "cosine"]));
        assert_eq!(cfg.metric, Metric::Cosine);
        let cfg = BenchConfig::from_slice(&s(&["prog", "--metric", "no-such"]));
        assert_eq!(cfg.metric, Metric::L2, "unknown metric falls back with a warning");
    }

    #[test]
    fn scaling_with_floor() {
        let cfg = BenchConfig {
            scale: 0.001,
            ..Default::default()
        };
        assert_eq!(cfg.n(10_000), 200);
        let cfg = BenchConfig::default();
        assert_eq!(cfg.n(10_000), 10_000);
    }

    #[test]
    fn ignores_unknown_flags() {
        let cfg = BenchConfig::from_slice(&s(&["prog", "--wat", "--scale", "2"]));
        assert_eq!(cfg.scale, 2.0);
    }

    #[test]
    fn parses_telemetry_flag() {
        assert!(!BenchConfig::from_slice(&s(&["prog"])).telemetry);
        // Takes no argument, so following flags still parse.
        let cfg = BenchConfig::from_slice(&s(&["prog", "--telemetry", "--scale", "0.5"]));
        assert!(cfg.telemetry);
        assert_eq!(cfg.scale, 0.5);
    }
}
