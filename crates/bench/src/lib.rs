//! Benchmark harness regenerating every table and figure of the HD-Index
//! evaluation (paper §5). See DESIGN.md §4 for the experiment-to-binary map.
//!
//! Each experiment is a binary under `src/bin/`; all share:
//!
//! * [`config`] — command-line scaling (`--scale`, `--queries`, `--seed`) so
//!   every experiment runs at laptop scale by default and can be dialed up;
//! * [`methods`] — one standardized runner per method (build, query
//!   workload, score against exact ground truth, account memory/disk/IO);
//! * [`table`] — fixed-width table printing in the shape of the paper's
//!   figures.

pub mod config;
pub mod methods;
pub mod table;

pub use config::BenchConfig;
pub use methods::{MethodOutcome, MethodResult, Workload};
