//! Benchmark harness regenerating every table and figure of the HD-Index
//! evaluation (paper §5). See DESIGN.md §4 for the experiment-to-binary map.
//!
//! Each experiment is a binary under `src/bin/`; all share:
//!
//! * [`config`] — command-line scaling (`--scale`, `--queries`, `--seed`) so
//!   every experiment runs at laptop scale by default and can be dialed up;
//! * [`methods`] — the method *registry* plus one generic runner: every
//!   method builds behind `Box<dyn AnnIndex>` (the `hd_core::api` trait)
//!   and is measured by the same code path (build, query workload, score
//!   against exact ground truth, account memory/disk/IO). `--methods a,b`
//!   selects registry entries on any comparative binary;
//! * [`sweep`] — HD-Index parameter-study entry point for the Fig. 4/5/6/10
//!   binaries (custom construction/query parameters, same measurement core);
//! * [`table`] — fixed-width table printing in the shape of the paper's
//!   figures.

pub mod config;
pub mod methods;
pub mod sweep;
pub mod table;
pub mod telemetry_report;

pub use config::BenchConfig;
pub use methods::{MethodOutcome, MethodResult, MethodSpec, Workload};
