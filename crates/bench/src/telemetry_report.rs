//! `--telemetry` support for the experiment binaries: flips the global
//! telemetry gate on, and at exit prints a per-stage latency breakdown, the
//! Prometheus exposition (self-validated), and a JSON snapshot.
//!
//! Two numbers double as CI gates (the process exits non-zero when either
//! fails):
//!
//! * **coverage** — on binaries that run traced HD-Index queries, the three
//!   instrumented stages (reference distances, candidate walk, refinement)
//!   must account for ≥ 90% of measured end-to-end query time, i.e. the
//!   breakdown explains where queries spend their time rather than leaving
//!   it in an unattributed remainder;
//! * **exposition validity** — `render_prometheus()` output must pass
//!   [`hd_telemetry::validate_prometheus`] (name charset, HELP/TYPE lines,
//!   no duplicate series).

use crate::config::BenchConfig;
use crate::table;
use std::time::Instant;

/// Coverage the instrumented stages must reach vs end-to-end query time.
const COVERAGE_GATE: f64 = 0.90;

/// Enables telemetry when `--telemetry` was passed; call first thing in
/// `main`. Measures the disabled-path `span!` overhead *before* flipping
/// the gate, so the printed number is exactly what every non-telemetry run
/// pays.
pub fn init(cfg: &BenchConfig) {
    if !cfg.telemetry {
        return;
    }
    let overhead = disabled_span_overhead_ns();
    println!(
        "[telemetry] enabled; disabled-path span! overhead ≈ {overhead:.2} ns/call \
         (what runs without --telemetry pay per instrumented call site)"
    );
    hd_telemetry::install_events(Box::new(std::io::stderr()), hd_telemetry::Level::Info, 20);
    hd_telemetry::set_enabled(true);
}

/// Average cost of one `span!` call while telemetry is disabled: a relaxed
/// atomic load and an immediate `None`. Measured over a million calls.
fn disabled_span_overhead_ns() -> f64 {
    assert!(
        !hd_telemetry::enabled(),
        "overhead probe must run before telemetry is enabled"
    );
    const CALLS: u32 = 1_000_000;
    let t = Instant::now();
    for _ in 0..CALLS {
        let s = hd_telemetry::span!("bench_overhead_probe_nanos");
        std::hint::black_box(&s);
    }
    t.elapsed().as_nanos() as f64 / f64::from(CALLS)
}

/// Prints the stage breakdown + exposition and enforces the CI gates; call
/// last thing in `main`. No-op without `--telemetry`.
pub fn report(cfg: &BenchConfig) {
    if !cfg.telemetry {
        return;
    }
    hd_telemetry::set_enabled(false);
    let dropped = hd_telemetry::uninstall_events();
    let reg = hd_telemetry::global();

    // ---- Stage breakdown table -------------------------------------------
    // The per-query pipeline stages attribute against end-to-end query time;
    // everything else (shard/engine/WAL/compaction histograms) rides in the
    // same table with an unattributed share column.
    let total = reg.histogram("hd_query_nanos", "end-to-end traced HD-Index query latency");
    let stages = [
        "hd_query_ref_dists_nanos",
        "hd_query_candidates_nanos",
        "hd_query_refine_nanos",
    ];
    let widths = [28usize, 10, 12, 12, 12, 12, 8];
    table::header(
        "telemetry: stage breakdown",
        &["stage", "count", "total", "mean", "p50", "p99", "share"],
        &widths,
    );
    let total_sum = total.sum();
    let mut attributed = 0u64;
    let mut rows: Vec<String> = reg
        .names()
        .into_iter()
        .filter(|n| n.ends_with("_nanos") && !n.starts_with("bench_overhead"))
        .collect();
    // Pipeline stages first, in execution order; the rest alphabetically.
    rows.sort_by_key(|n| match stages.iter().position(|s| s == n) {
        Some(i) => (0, i, n.clone()),
        None => (1, usize::MAX, n.clone()),
    });
    for name in rows {
        let h = reg.histogram(&name, "");
        if h.count() == 0 {
            continue;
        }
        let is_stage = stages.contains(&name.as_str());
        if is_stage {
            attributed += h.sum();
        }
        let share = if is_stage && total_sum > 0 {
            table::pct(h.sum() as f64 / total_sum as f64)
        } else if name == "hd_query_nanos" {
            "100%".into()
        } else {
            "—".into()
        };
        table::row(
            &[
                name.clone(),
                h.count().to_string(),
                table::ms(h.sum() as f64 / 1e6),
                table::ms(h.mean() / 1e6),
                table::ms(h.percentile(0.5) as f64 / 1e6),
                table::ms(h.percentile(0.99) as f64 / 1e6),
                share,
            ],
            &widths,
        );
    }
    if dropped > 0 {
        println!("[telemetry] {dropped} events rate-limited");
    }

    // ---- Coverage gate ---------------------------------------------------
    if total.count() > 0 {
        let coverage = attributed as f64 / total_sum as f64;
        println!(
            "[telemetry] stage coverage: {} of end-to-end query time attributed \
             (gate ≥ {})",
            table::pct(coverage),
            table::pct(COVERAGE_GATE),
        );
        if coverage < COVERAGE_GATE {
            eprintln!("[telemetry] FAIL: stage breakdown below the coverage gate");
            std::process::exit(1);
        }
        // The disabled path is the per-site probe cost times a handful of
        // sites per query — make the "< 2% regression" claim concrete.
        let per_query_ns = disabled_span_overhead_ns() * stages.len() as f64;
        println!(
            "[telemetry] implied overhead without --telemetry: ~{per_query_ns:.0} ns/query \
             vs mean query {} ({})",
            table::ms(total.mean() / 1e6),
            table::pct(per_query_ns / total.mean()),
        );
    }

    // ---- Exposition ------------------------------------------------------
    let text = reg.render_prometheus();
    match hd_telemetry::validate_prometheus(&text) {
        Ok(samples) => println!(
            "\n=== telemetry: prometheus exposition ({samples} samples, validated) ===\n{text}"
        ),
        Err(err) => {
            eprintln!("[telemetry] FAIL: invalid prometheus exposition: {err}");
            std::process::exit(1);
        }
    }
    println!("=== telemetry: json snapshot ===\n{}", reg.render_json());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_overhead_is_near_zero() {
        // The whole point of the gate: one relaxed load per disabled call.
        // 50 ns is over an order of magnitude above what it measures in
        // release mode; the bound only catches accidental allocation or
        // clock reads sneaking into the disabled path (debug builds stay
        // comfortably under it too).
        let ns = disabled_span_overhead_ns();
        assert!(ns < 50.0, "disabled span! costs {ns:.1} ns/call");
    }

    #[test]
    fn report_without_flag_is_a_no_op() {
        let cfg = BenchConfig::default();
        assert!(!cfg.telemetry);
        init(&cfg);
        report(&cfg); // must not enable telemetry, print, or exit
        assert!(!hd_telemetry::enabled());
    }
}
