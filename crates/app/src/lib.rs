//! Image-search application layer (paper §5.5, Appendices D–E).
//!
//! The paper's closing argument is an end-to-end retrieval task: every
//! descriptor of a query image runs a kANN search, and per-image scores are
//! aggregated with the **Borda count** (Eq. 7); small per-descriptor errors
//! wash out in aggregation — the reason kANN (and MAP as its quality metric)
//! is the right primitive for real retrieval systems.
//!
//! [`borda`] implements the rank-aggregation exactly as Appendix D defines
//! it; [`image_search`] provides a synthetic multi-descriptor image corpus
//! (standing in for the Yorck SURF corpus, see DESIGN.md §2) and the
//! search-aggregate-evaluate pipeline.

pub mod borda;
pub mod image_search;

pub use borda::borda_count;
pub use image_search::{ImageCorpus, ImageSearchResult};
