//! Synthetic multi-descriptor image corpus and the end-to-end search
//! pipeline of §5.5.
//!
//! The Yorck corpus (SURF descriptors of 10,000 art images) is not
//! redistributable; the stand-in gives every image its own descriptor
//! distribution (a per-image Gaussian cluster over a handful of "visual
//! words"), so that descriptors of the same image are mutual near-neighbors
//! — the property Borda aggregation exploits. A query image is a *distorted
//! re-render* of a database image (noise added to each descriptor), making
//! the source image the unambiguous ground-truth answer.

use crate::borda::borda_count;
use hd_core::dataset::Dataset;
use hd_core::topk::Neighbor;
use rand::{Rng, SeedableRng};

/// A corpus of images, each owning a contiguous run of descriptors.
#[derive(Debug)]
pub struct ImageCorpus {
    /// All descriptors of all images, flattened.
    pub descriptors: Dataset,
    /// `owner[d]` = image id of descriptor `d`.
    pub owner: Vec<u32>,
    pub n_images: usize,
    pub descs_per_image: usize,
    dim: usize,
    lo: f32,
    hi: f32,
    seed: u64,
}

impl ImageCorpus {
    /// Generates `n_images` images with `descs_per_image` descriptors each,
    /// in a `dim`-dimensional descriptor space over `[lo, hi]`.
    pub fn generate(
        n_images: usize,
        descs_per_image: usize,
        dim: usize,
        lo: f32,
        hi: f32,
        seed: u64,
    ) -> Self {
        assert!(n_images > 0 && descs_per_image > 0 && dim > 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let span = hi - lo;
        let mut descriptors = Dataset::new(dim);
        descriptors.reserve(n_images * descs_per_image);
        let mut owner = Vec::with_capacity(n_images * descs_per_image);

        for img in 0..n_images {
            // Each image has a few "visual words" (sub-clusters).
            let n_words = 4.min(descs_per_image);
            let words: Vec<Vec<f32>> = (0..n_words)
                .map(|_| (0..dim).map(|_| rng.gen_range(lo..=hi)).collect())
                .collect();
            for d in 0..descs_per_image {
                let w = &words[d % n_words];
                let desc: Vec<f32> = w
                    .iter()
                    .map(|&c| (c + rng.gen_range(-0.02..0.02) * span).clamp(lo, hi))
                    .collect();
                descriptors.push(&desc);
                owner.push(img as u32);
            }
        }
        Self {
            descriptors,
            owner,
            n_images,
            descs_per_image,
            dim,
            lo,
            hi,
            seed,
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Renders a *query image*: the descriptors of database image `img`,
    /// each perturbed by `noise` (fraction of the domain span).
    pub fn query_image(&self, img: usize, noise: f32) -> Dataset {
        assert!(img < self.n_images, "image out of range");
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed ^ (img as u64) << 20 | 0xA11CE);
        let span = self.hi - self.lo;
        let mut q = Dataset::new(self.dim);
        let start = img * self.descs_per_image;
        for d in start..start + self.descs_per_image {
            let desc: Vec<f32> = self
                .descriptors
                .get(d)
                .iter()
                .map(|&v| (v + rng.gen_range(-noise..=noise) * span).clamp(self.lo, self.hi))
                .collect();
            q.push(&desc);
        }
        q
    }
}

/// Outcome of one image search: ranked `(image, borda score)` pairs.
#[derive(Debug, Clone)]
pub struct ImageSearchResult {
    pub ranked: Vec<(u32, u64)>,
}

impl ImageSearchResult {
    /// Top-k image ids.
    pub fn top_k(&self, k: usize) -> Vec<u32> {
        self.ranked.iter().take(k).map(|&(i, _)| i).collect()
    }

    /// Overlap with another ranked result at depth k (|A∩B|/k) — the
    /// "overlap with the ground truth produced by linear scan" measure the
    /// paper uses to compare methods in §5.5.
    pub fn overlap_at(&self, other: &ImageSearchResult, k: usize) -> f64 {
        let a: std::collections::HashSet<u32> = self.top_k(k).into_iter().collect();
        let b: std::collections::HashSet<u32> = other.top_k(k).into_iter().collect();
        a.intersection(&b).count() as f64 / k.max(1) as f64
    }
}

/// Runs the full §5.5 pipeline: per-descriptor kANN through `search` (any
/// index's query closure), then Borda aggregation over the corpus ownership
/// map.
pub fn search_image<F>(
    corpus: &ImageCorpus,
    query: &Dataset,
    k_per_descriptor: usize,
    mut search: F,
) -> ImageSearchResult
where
    F: FnMut(&[f32], usize) -> Vec<Neighbor>,
{
    let results: Vec<Vec<Neighbor>> = query
        .iter()
        .map(|desc| search(desc, k_per_descriptor))
        .collect();
    ImageSearchResult {
        ranked: borda_count(&corpus.owner, &results),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_core::ground_truth::knn_exact;

    fn corpus() -> ImageCorpus {
        ImageCorpus::generate(30, 8, 32, 0.0, 255.0, 99)
    }

    #[test]
    fn corpus_shape() {
        let c = corpus();
        assert_eq!(c.descriptors.len(), 240);
        assert_eq!(c.owner.len(), 240);
        assert_eq!(c.owner[0], 0);
        assert_eq!(c.owner[239], 29);
    }

    #[test]
    fn linear_scan_pipeline_recovers_source_image() {
        let c = corpus();
        for img in [0usize, 7, 29] {
            let q = c.query_image(img, 0.01);
            let result = search_image(&c, &q, 10, |desc, k| knn_exact(&c.descriptors, desc, k));
            assert_eq!(
                result.top_k(1)[0],
                img as u32,
                "query render of image {img} must retrieve it"
            );
        }
    }

    #[test]
    fn heavy_noise_degrades_rank_gracefully() {
        let c = corpus();
        let q = c.query_image(3, 0.01);
        let clean = search_image(&c, &q, 10, |d, k| knn_exact(&c.descriptors, d, k));
        let q_noisy = c.query_image(3, 0.4);
        let noisy = search_image(&c, &q_noisy, 10, |d, k| knn_exact(&c.descriptors, d, k));
        let clean_score = clean.ranked.iter().find(|&&(i, _)| i == 3).unwrap().1;
        let noisy_score = noisy
            .ranked
            .iter()
            .find(|&&(i, _)| i == 3)
            .map(|&(_, s)| s)
            .unwrap_or(0);
        assert!(clean_score > noisy_score, "{clean_score} vs {noisy_score}");
    }

    #[test]
    fn overlap_metric() {
        let a = ImageSearchResult {
            ranked: vec![(1, 10), (2, 8), (3, 5)],
        };
        let b = ImageSearchResult {
            ranked: vec![(2, 9), (1, 7), (9, 6)],
        };
        assert!((a.overlap_at(&b, 2) - 1.0).abs() < 1e-12);
        assert!((a.overlap_at(&b, 3) - 2.0 / 3.0).abs() < 1e-12);
    }
}
