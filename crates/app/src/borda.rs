//! Borda-count rank aggregation (paper Appendix D, Eq. 7).

use hd_core::topk::Neighbor;

/// Aggregates per-descriptor kANN results into ranked images.
///
/// `owner[d]` maps descriptor id `d` to its image id. For each result list
/// `r(j, q)` and each position `l` (1-based) holding a descriptor of image
/// `i`, image `i` accumulates `k + 1 − l` points (Eq. 7), where `k` is the
/// per-descriptor result length. Returns `(image, score)` pairs sorted by
/// descending score (ties by image id, for determinism).
pub fn borda_count(owner: &[u32], result_sets: &[Vec<Neighbor>]) -> Vec<(u32, u64)> {
    let mut scores: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for r in result_sets {
        let k = r.len();
        for (l0, nb) in r.iter().enumerate() {
            let image = owner[nb.id as usize];
            let points = (k - l0) as u64; // k + 1 − l with l = l0 + 1
            *scores.entry(image).or_insert(0) += points;
        }
    }
    let mut ranked: Vec<(u32, u64)> = scores.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: u64) -> Neighbor {
        Neighbor::new(id, 1.0)
    }

    #[test]
    fn single_result_set_scores_by_position() {
        // Descriptors 0,1,2 belong to images 10,11,12.
        let owner = vec![10, 11, 12];
        let ranked = borda_count(&owner, &[vec![n(0), n(1), n(2)]]);
        // k=3: positions score 3, 2, 1.
        assert_eq!(ranked, vec![(10, 3), (11, 2), (12, 1)]);
    }

    #[test]
    fn scores_accumulate_across_result_sets() {
        let owner = vec![7, 8];
        let ranked = borda_count(
            &owner,
            &[vec![n(0), n(1)], vec![n(1), n(0)]],
        );
        // Both images: 2 + 1 = 3 points; tie broken by image id.
        assert_eq!(ranked, vec![(7, 3), (8, 3)]);
    }

    #[test]
    fn repeated_image_descriptors_stack() {
        // Two descriptors of image 5 in one result list.
        let owner = vec![5, 5, 9];
        let ranked = borda_count(&owner, &[vec![n(0), n(1), n(2)]]);
        assert_eq!(ranked[0], (5, 5)); // 3 + 2
        assert_eq!(ranked[1], (9, 1));
    }

    #[test]
    fn empty_inputs() {
        assert!(borda_count(&[], &[]).is_empty());
        assert!(borda_count(&[1], &[vec![]]).is_empty());
    }

    #[test]
    fn paper_formula_k_plus_one_minus_l() {
        // Explicit check of Eq. 7 weights for k = 4.
        let owner = vec![0, 1, 2, 3];
        let ranked = borda_count(&owner, &[vec![n(0), n(1), n(2), n(3)]]);
        let scores: Vec<u64> = ranked.iter().map(|&(_, s)| s).collect();
        assert_eq!(scores, vec![4, 3, 2, 1]);
    }
}
