//! Quickstart: build an HD-Index over a synthetic SIFT-like corpus and run
//! approximate k-nearest-neighbor queries through the unified `AnnIndex`
//! trait — the same interface every method in the workspace (the serving
//! engine and all ten baselines included) answers queries behind.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hd_index_repro::hd_core::api::{AnnIndex, SearchRequest};
use hd_index_repro::hd_core::dataset::{generate, DatasetProfile};
use hd_index_repro::hd_core::ground_truth::knn_exact;
use hd_index_repro::hd_core::metrics::{average_precision, ids};
use hd_index_repro::hd_index::{HdIndex, HdIndexParams};

fn main() -> std::io::Result<()> {
    // 1. Data: 20,000 SIFT-profile vectors (128-D, integers in [0, 255])
    //    plus 5 held-out queries from the same distribution.
    let profile = DatasetProfile::SIFT;
    let (data, queries) = generate(&profile, 20_000, 5, 42);
    println!("dataset: n={} ν={} ({})", data.len(), data.dim(), profile.name);

    // 2. Build with the paper's recommended parameters for this profile:
    //    τ=8 RDB-trees, Hilbert order ω=8, m=10 reference objects (SSS).
    let dir = std::env::temp_dir().join("hd_index_quickstart");
    let params = HdIndexParams::for_profile(&profile);
    let t0 = std::time::Instant::now();
    // `Box<dyn AnnIndex>`: from here on, nothing below depends on the
    // concrete method — swap in `hd_engine::Engine::build(..)` or any
    // baseline and the query loop is unchanged.
    let index: Box<dyn AnnIndex> = Box::new(HdIndex::build(&data, &params, &dir)?);
    let stats = index.stats();
    println!(
        "built HD-Index in {:.2?}: {} on disk, {} resident",
        t0.elapsed(),
        hd_index_repro::hd_core::util::fmt_bytes(stats.disk_bytes as usize),
        hd_index_repro::hd_core::util::fmt_bytes(stats.memory_bytes),
    );

    // 3. Query: k=10 with the serve defaults (α=4096 candidates per tree,
    //    triangular filter to γ=1024 — the paper's recommended pipeline);
    //    `.with_trace()` asks for the per-query cost diagnostics.
    let req = SearchRequest::new(10).with_trace();
    for (qi, q) in queries.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let out = index.search(q, &req)?;
        let elapsed = t0.elapsed();
        let trace = out.trace.expect("requested trace");

        // Score against the exact answer.
        let truth = knn_exact(&data, q, 10);
        let ap = average_precision(&ids(&truth), &ids(&out.neighbors));
        println!(
            "query {qi}: {elapsed:.2?}, {} disk reads, κ={}, AP@10={ap:.3}, nn=(id {}, d {:.1})",
            trace.physical_reads, trace.kappa, out.neighbors[0].id, out.neighbors[0].dist
        );
    }

    std::fs::remove_dir_all(dir).ok();
    Ok(())
}
