//! Quickstart: build an HD-Index over a synthetic SIFT-like corpus and run
//! approximate k-nearest-neighbor queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hd_index_repro::hd_core::dataset::{generate, DatasetProfile};
use hd_index_repro::hd_core::ground_truth::knn_exact;
use hd_index_repro::hd_core::metrics::{average_precision, ids};
use hd_index_repro::hd_index::{HdIndex, HdIndexParams, QueryParams};

fn main() -> std::io::Result<()> {
    // 1. Data: 20,000 SIFT-profile vectors (128-D, integers in [0, 255])
    //    plus 5 held-out queries from the same distribution.
    let profile = DatasetProfile::SIFT;
    let (data, queries) = generate(&profile, 20_000, 5, 42);
    println!("dataset: n={} ν={} ({})", data.len(), data.dim(), profile.name);

    // 2. Build with the paper's recommended parameters for this profile:
    //    τ=8 RDB-trees, Hilbert order ω=8, m=10 reference objects (SSS).
    let dir = std::env::temp_dir().join("hd_index_quickstart");
    let params = HdIndexParams::for_profile(&profile);
    let t0 = std::time::Instant::now();
    let index = HdIndex::build(&data, &params, &dir)?;
    println!(
        "built HD-Index in {:.2?}: {} on disk, {} resident",
        t0.elapsed(),
        hd_index_repro::hd_core::util::fmt_bytes(index.disk_bytes() as usize),
        hd_index_repro::hd_core::util::fmt_bytes(index.memory_bytes()),
    );

    // 3. Query: α=4096 candidates per tree, triangular filter to γ=1024,
    //    exact refinement to k=10 (the paper's recommended pipeline).
    let qp = QueryParams::triangular(4096, 1024, 10);
    for (qi, q) in queries.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let (approx, trace) = index.knn_traced(q, &qp)?;
        let elapsed = t0.elapsed();

        // Score against the exact answer.
        let truth = knn_exact(&data, q, 10);
        let ap = average_precision(&ids(&truth), &ids(&approx));
        println!(
            "query {qi}: {elapsed:.2?}, {} disk reads, κ={}, AP@10={ap:.3}, nn=(id {}, d {:.1})",
            trace.physical_reads, trace.kappa, approx[0].id, approx[0].dist
        );
    }

    std::fs::remove_dir_all(dir).ok();
    Ok(())
}
