//! Updates and disk behaviour (paper §3.6, §4.4): insert new objects into a
//! live index, delete others, and watch the disk-access ledger that backs
//! the paper's cost model — all with buffer caching off, the paper's
//! measurement mode.
//!
//! ```text
//! cargo run --release --example updates_and_disk
//! ```

use hd_index_repro::hd_core::dataset::{generate, DatasetProfile};
use hd_index_repro::hd_index::{HdIndex, HdIndexParams, QueryParams};

fn main() -> std::io::Result<()> {
    let profile = DatasetProfile::GLOVE;
    let (data, queries) = generate(&profile, 15_000, 3, 3);
    let dir = std::env::temp_dir().join("hd_index_updates");
    let params = HdIndexParams::for_profile(&profile);
    let mut index = HdIndex::build(&data, &params, &dir)?;
    let qp = QueryParams::triangular(2048, 512, 5);

    // Cost model in action: per-query disk accesses ≈ τ·(log n + α/Ω + γ').
    println!("-- disk accesses per query (caches off) --");
    for (i, q) in queries.iter().enumerate() {
        let (res, trace) = index.knn_traced(q, &qp)?;
        println!(
            "query {i}: {} physical reads (κ={}, scanned {}), nn d={:.2}",
            trace.physical_reads, trace.kappa, trace.scanned, res[0].dist
        );
    }

    // Insert: a brand-new vector becomes immediately queryable (§3.6 —
    // B+-trees are naturally update-friendly; reference set is kept as-is).
    println!("\n-- inserts --");
    let novel: Vec<f32> = (0..profile.dim).map(|i| ((i % 20) as f32 - 10.0) * 0.9).collect();
    let id = index.insert(&novel)?;
    let hit = index.knn(&novel, &qp)?[0];
    println!("inserted object {id}; self-query returns id {} at distance {}", hit.id, hit.dist);
    assert_eq!(hit.id, id);

    // Delete: tombstoned, never returned again.
    println!("\n-- deletes --");
    index.delete(id)?;
    let after = index.knn(&novel, &qp)?[0];
    println!("after delete, nearest is id {} at distance {:.3}", after.id, after.dist);
    assert_ne!(after.id, id);

    // The index survives on disk; file sizes match the paper's accounting.
    println!("\n-- on-disk layout --");
    println!(
        "total {} ({} in RDB-trees, rest in the vector heap)",
        hd_index_repro::hd_core::util::fmt_bytes(index.disk_bytes() as usize),
        hd_index_repro::hd_core::util::fmt_bytes(index.tree_disk_bytes() as usize),
    );
    for entry in std::fs::read_dir(&dir)? {
        let entry = entry?;
        println!(
            "  {:<16} {}",
            entry.file_name().to_string_lossy(),
            hd_index_repro::hd_core::util::fmt_bytes(entry.metadata()?.len() as usize)
        );
    }

    std::fs::remove_dir_all(dir).ok();
    Ok(())
}
