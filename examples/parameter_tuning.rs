//! Parameter-tuning walkthrough (paper §3.4, §5.2): sweep the number of
//! reference objects m, the number of trees τ, and the candidate budget α,
//! and watch where quality saturates — reproducing in miniature the tuning
//! methodology behind the paper's recommended defaults (m=10, τ=8, α=4096,
//! α/γ=4, triangular-only filtering).
//!
//! Construction parameters vary per *build*; the α/γ sweeps ride the
//! per-call budget knobs of the unified `AnnIndex` request instead of
//! rebuilding anything.
//!
//! ```text
//! cargo run --release --example parameter_tuning
//! ```

use hd_index_repro::hd_core::api::{AnnIndex, SearchRequest};
use hd_index_repro::hd_core::dataset::{generate, DatasetProfile};
use hd_index_repro::hd_core::ground_truth::ground_truth_knn;
use hd_index_repro::hd_core::metrics::{ids, mean_average_precision};
use hd_index_repro::hd_index::{HdIndex, HdIndexParams, QueryParams};

fn main() -> std::io::Result<()> {
    let profile = DatasetProfile::SIFT;
    let (data, queries) = generate(&profile, 10_000, 30, 11);
    let truth = ground_truth_knn(&data, &queries, 10, 4);
    let truth_ids: Vec<Vec<u64>> = truth.iter().map(|t| ids(t)).collect();
    let base = HdIndexParams::for_profile(&profile);
    let scratch = std::env::temp_dir().join("hd_index_tuning");

    // Everything below talks to the index through the trait object — the
    // sweep harness would work unchanged for any registered method.
    let evaluate = |index: &dyn AnnIndex, req: &SearchRequest| -> (f64, std::time::Duration) {
        let t0 = std::time::Instant::now();
        let approx: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| ids(&index.search(q, req).expect("query IO").neighbors))
            .collect();
        let per_query = t0.elapsed() / queries.len() as u32;
        (mean_average_precision(&truth_ids, &approx), per_query)
    };

    let req = |alpha: usize, gamma: usize| SearchRequest::new(10).with_candidates(alpha).with_refine(gamma);

    println!("-- sweep m (reference objects), τ=8, α=2048, γ=512 --");
    for m in [2usize, 5, 10, 15] {
        let params = HdIndexParams {
            num_references: m,
            ..base.clone()
        };
        let index = HdIndex::build(&data, &params, scratch.join(format!("m{m}")))?;
        let (map, t) = evaluate(&index, &req(2048, 512));
        println!("  m={m:<3} MAP@10={map:.3}  {t:.2?}/query");
    }

    println!("-- sweep τ (trees), m=10, α=2048, γ=512 --");
    for tau in [2usize, 4, 8, 16] {
        let params = HdIndexParams {
            tau,
            ..base.clone()
        };
        let index = HdIndex::build(&data, &params, scratch.join(format!("t{tau}")))?;
        let (map, t) = evaluate(&index, &req(2048, 512));
        println!("  τ={tau:<3} MAP@10={map:.3}  {t:.2?}/query");
    }

    println!("-- sweep α (candidates/tree) at α/γ=4, defaults otherwise --");
    let mut index = HdIndex::build(&data, &base, scratch.join("alpha"))?;
    for alpha in [512usize, 1024, 2048, 4096, 8192] {
        let (map, t) = evaluate(&index, &req(alpha, alpha / 4));
        println!("  α={alpha:<5} MAP@10={map:.3}  {t:.2?}/query");
    }

    println!("-- filters at α=2048 (triangular vs +Ptolemaic) --");
    // Filter choice is a serve-time default (`set_serve_params`), not a
    // per-request knob — the request API stays method-agnostic.
    for (label, qp) in [
        ("triangular ", QueryParams::triangular(2048, 512, 10)),
        ("tri+ptolemy", QueryParams::ptolemaic(2048, 1024, 512, 10)),
    ] {
        index.set_serve_params(qp);
        let (map, t) = evaluate(&index, &SearchRequest::new(10));
        println!("  {label} MAP@10={map:.3}  {t:.2?}/query");
    }

    println!("\nExpected shape: MAP saturates at m≈10, τ≈8, α≈4096; Ptolemaic adds a");
    println!("little MAP for ~2x the query time (paper's recommended defaults).");
    std::fs::remove_dir_all(scratch).ok();
    Ok(())
}
