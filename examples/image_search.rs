//! The paper's §5.5 application end-to-end: multi-descriptor image search
//! with Borda-count aggregation, comparing HD-Index against the exact
//! linear-scan pipeline.
//!
//! Each "image" is a bag of local descriptors; a query image is a distorted
//! re-render of a database image. Every query descriptor runs a kANN search,
//! and per-image Borda scores (Eq. 7) pick the answer — demonstrating why
//! modest per-descriptor approximation suffices for exact image retrieval.
//!
//! ```text
//! cargo run --release --example image_search
//! ```

use hd_index_repro::hd_app::image_search::{search_image, ImageCorpus};
use hd_index_repro::hd_core::ground_truth::knn_exact;
use hd_index_repro::hd_index::{HdIndex, HdIndexParams, QueryParams};

fn main() -> std::io::Result<()> {
    let corpus = ImageCorpus::generate(200, 16, 64, -1.0, 1.0, 7);
    println!(
        "corpus: {} images × {} descriptors ({} total, {}-D)",
        corpus.n_images,
        corpus.descs_per_image,
        corpus.descriptors.len(),
        corpus.dim()
    );

    // Index all descriptors with HD-Index.
    let dir = std::env::temp_dir().join("hd_index_image_search");
    let params = HdIndexParams {
        tau: 8,
        hilbert_order: 16,
        num_references: 10,
        domain: (-1.0, 1.0),
        ..HdIndexParams::for_profile(&hd_index_repro::hd_core::dataset::DatasetProfile::SIFT)
    };
    let index = HdIndex::build(&corpus.descriptors, &params, &dir)?;
    let qp = QueryParams::triangular(1024, 256, 20);

    let mut hits_hd = 0;
    let mut hits_exact = 0;
    let n_queries = 25;
    for img in 0..n_queries {
        let query = corpus.query_image(img, 0.05);

        // Approximate pipeline (HD-Index per-descriptor kANN).
        let approx = search_image(&corpus, &query, 20, |d, k| {
            let mut qp = qp;
            qp.k = k;
            index.knn(d, &qp).expect("query IO")
        });
        // Exact pipeline (linear scan per descriptor).
        let exact = search_image(&corpus, &query, 20, |d, k| knn_exact(&corpus.descriptors, d, k));

        let hd_top = approx.top_k(3);
        let ex_top = exact.top_k(3);
        if hd_top.first() == Some(&(img as u32)) {
            hits_hd += 1;
        }
        if ex_top.first() == Some(&(img as u32)) {
            hits_exact += 1;
        }
        if img < 5 {
            println!(
                "query image {img}: HD-Index top-3 {:?} | linear top-3 {:?} | overlap@3 {:.2}",
                hd_top,
                ex_top,
                approx.overlap_at(&exact, 3)
            );
        }
    }
    println!(
        "\nsource image retrieved at rank 1: HD-Index {hits_hd}/{n_queries}, linear scan {hits_exact}/{n_queries}"
    );
    println!("(paper §5.5: approximate kANN + Borda aggregation ≈ exact retrieval)");

    std::fs::remove_dir_all(dir).ok();
    Ok(())
}
